(** Baseline: cache-oblivious trapezoidal decomposition (Frigo &
    Strumpen; the technique behind Pochoir [32], which the paper cites as
    the CPU-side state of the art for temporal blocking).

    Space-time is recursively cut into trapezoids over the first spatial
    dimension (whole rows are the unit): a *space cut* splits a wide
    trapezoid along a line of slope ±rad (the dependence slope), the
    left piece executed before the right; a *time cut* halves a tall
    one. Leaves advance single rows one time-step. No redundant
    computation, no tuning parameter — locality comes from the recursion
    itself, which is exactly the contrast with AN5D's explicitly sized
    on-chip blocking.

    The executor is bit-compared against the reference; the classic
    correctness argument (a row's neighbors are never more than one
    time level ahead inside a legal trapezoid, so double buffering by
    [t mod 2] suffices) is exercised by property tests. *)

type stats = {
  leaves : int;  (** leaf row-updates executed *)
  space_cuts : int;
  time_cuts : int;
  max_depth : int;
}

let run ?stats_out pattern ~steps (g : Stencil.Grid.t) =
  Obs.Trace.with_span "execute"
    ~attrs:
      [ ("baseline", Obs.Trace.Str "trapezoid"); ("steps", Obs.Trace.Int steps) ]
  @@ fun () ->
  let rad = pattern.Stencil.Pattern.radius in
  let dims = g.Stencil.Grid.dims in
  let l = dims.(0) in
  let n = Array.length dims in
  let update = Stencil.Pattern.compile pattern in
  let interior = Stencil.Grid.interior ~rad g in
  let bufs = [| Stencil.Grid.copy g; Stencil.Grid.copy g |] in
  let idx_buf = Array.make n 0 in
  let leaves = ref 0 and space_cuts = ref 0 and time_cuts = ref 0 and max_depth = ref 0 in
  (* Advance row [x] from time level [t] to [t + 1]: read buffer
     [t mod 2], write [(t+1) mod 2]. Boundary cells copy. *)
  let kernel t x =
    incr leaves;
    let src = bufs.(t mod 2) and dst = bufs.((t + 1) mod 2) in
    let row_box =
      Poly.Box.make
        (Poly.Interval.make x x
        :: List.init (n - 1) (fun d -> Poly.Interval.make 0 (dims.(d + 1) - 1)))
    in
    Poly.Box.iter
      (fun idx ->
        if Poly.Box.contains interior idx then begin
          let read off =
            Array.iteri (fun d i -> idx_buf.(d) <- i + off.(d)) idx;
            Stencil.Grid.get src idx_buf
          in
          Stencil.Grid.set dst idx (update read)
        end
        else Stencil.Grid.set dst idx (Stencil.Grid.get src idx))
      row_box
  in
  (* Walk the trapezoid: at time t in [t0, t1), rows
     [x0 + dx0*(t - t0), x1 + dx1*(t - t0)). Slopes are in rows per
     step, |slope| <= rad. *)
  let rec walk depth t0 t1 x0 dx0 x1 dx1 =
    if depth > !max_depth then max_depth := depth;
    let dt = t1 - t0 in
    if dt = 1 then
      for x = max 0 x0 to min l (x1) - 1 do
        kernel t0 x
      done
    else if dt > 1 then begin
      if x1 - x0 >= 2 * rad * dt then begin
        (* wide: space cut along the center with dependence slopes *)
        incr space_cuts;
        let xm = ((2 * (x0 + x1)) + ((2 * rad) + dx0 + dx1) * dt) / 4 in
        walk (depth + 1) t0 t1 x0 dx0 xm (-rad);
        walk (depth + 1) t0 t1 xm (-rad) x1 dx1
      end
      else begin
        (* tall: time cut *)
        incr time_cuts;
        let s = dt / 2 in
        walk (depth + 1) t0 (t0 + s) x0 dx0 x1 dx1;
        walk (depth + 1) (t0 + s) t1 (x0 + (dx0 * s)) dx0 (x1 + (dx1 * s)) dx1
      end
    end
  in
  if steps > 0 then walk 0 0 steps 0 0 l 0;
  (match stats_out with
  | Some r ->
      r :=
        Some
          {
            leaves = !leaves;
            space_cuts = !space_cuts;
            time_cuts = !time_cuts;
            max_depth = !max_depth;
          }
  | None -> ());
  bufs.(steps mod 2)

let pp_stats ppf s =
  Fmt.pf ppf "%d leaves, %d space cuts, %d time cuts, depth %d" s.leaves
    s.space_cuts s.time_cuts s.max_depth
