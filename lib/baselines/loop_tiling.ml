(** Baseline: PPCG-style spatial loop tiling (no temporal blocking).

    One kernel launch per time-step; each thread block loads its tile
    plus the halo ring from global memory, computes one update per cell,
    and stores the tile back. Redundant halo loads and no cross-step
    reuse make this globally memory bound — the paper's Fig 6 shows it
    trailing every other scheme. *)


(* PPCG's default tile edge. *)
let default_tile = 32

type report = {
  seconds : float;
  gflops : float;
  gm_words : float;  (** global traffic in words over the whole run *)
}

(* ------------------------------------------------------------------ *)
(* Executor (correctness + traffic on the simulated GPU)               *)
(* ------------------------------------------------------------------ *)

(** Run [steps] sweeps with spatial tiling through the machine. The
    numerics are identical to the reference (same update order within a
    step); traffic is counted per tile: every cell of the tile+halo box
    is read once, every tile cell written once. Tiles of one sweep
    write disjoint boxes, so [domains]/[pool] parallelize them
    bit-identically (as in {!An5d_core.Blocking.run}). *)
let run ?(tile = default_tile) ?domains ?pool pattern ~(machine : Gpu.Machine.t)
    ~steps g =
  Obs.Trace.with_span "execute"
    ~attrs:
      [ ("baseline", Obs.Trace.Str "loop_tiling"); ("tile", Obs.Trace.Int tile);
        ("steps", Obs.Trace.Int steps) ]
  @@ fun () ->
  let rad = pattern.Stencil.Pattern.radius in
  let dims = g.Stencil.Grid.dims in
  let n = Array.length dims in
  let update = Stencil.Pattern.compile pattern in
  let ops = Stencil.Pattern.ops_per_cell pattern in
  let tiles_per_dim = Array.map (fun d -> (d + tile - 1) / tile) dims in
  let n_tiles = Array.fold_left ( * ) 1 tiles_per_dim in
  let grid_box = Stencil.Grid.domain g in
  let interior = Stencil.Grid.interior ~rad g in
  let a = Stencil.Grid.copy g and b = Stencil.Grid.copy g in
  let cur = ref a and nxt = ref b in
  let sweep pool src dst =
    Stencil.Grid.blit ~src ~dst;
    Gpu.Machine.launch ?pool machine ~n_blocks:n_tiles
      ~n_thr:(min 1024 (Stencil.Shape.ipow tile (min 2 n)))
      (fun ctx ->
        let counters = ctx.Gpu.Machine.machine.Gpu.Machine.counters in
        let idx_buf = Array.make n 0 in
        let id = ref ctx.Gpu.Machine.block_id in
        let origin =
          Array.init n (fun d ->
              let below =
                Array.fold_left ( * ) 1 (Array.sub tiles_per_dim (d + 1) (n - d - 1))
              in
              let k = !id / below in
              id := !id mod below;
              k * tile)
        in
        let tile_box =
          Poly.Box.make
            (List.init n (fun d ->
                 Poly.Interval.make origin.(d) (min (origin.(d) + tile - 1) (dims.(d) - 1))))
        in
        let halo_box = Poly.Box.inter (Poly.Box.grow rad tile_box) grid_box in
        (* tile + halo loaded once (shared memory staging) *)
        counters.Gpu.Counters.gm_reads <-
          counters.Gpu.Counters.gm_reads + Poly.Box.volume halo_box;
        Poly.Box.iter
          (fun idx ->
            if Poly.Box.contains interior idx then begin
              let read off =
                Array.iteri (fun d i -> idx_buf.(d) <- i + off.(d)) idx;
                Stencil.Grid.get src idx_buf
              in
              Stencil.Grid.set dst idx (update read);
              Gpu.Counters.add_ops counters ops;
              counters.Gpu.Counters.cells_updated <-
                counters.Gpu.Counters.cells_updated + 1
            end;
            counters.Gpu.Counters.gm_writes <- counters.Gpu.Counters.gm_writes + 1)
          tile_box)
  in
  let exec pool =
    for _ = 1 to steps do
      sweep pool !cur !nxt;
      let t = !cur in
      cur := !nxt;
      nxt := t
    done
  in
  (match pool with
  | Some _ -> exec pool
  | None -> Gpu.Pool.with_pool ?domains exec);
  !cur

(* ------------------------------------------------------------------ *)
(* Analytic model (full-size runs)                                     *)
(* ------------------------------------------------------------------ *)

(* Achieved fraction of STREAM bandwidth for a tiled stencil sweep:
   strided halo rows break coalescing and the per-step kernel launches
   leave the memory system idle between sweeps. Calibrated so loop
   tiling lands in the few-hundred-GFLOP/s band of Fig 6. *)
let gm_efficiency = 0.55

(* Achievable fraction of peak compute for the untuned per-step kernels
   PPCG emits: no FMA-friendly scheduling, heavy addressing, no register
   blocking. Binds only for very high FLOP/cell (high-order box)
   stencils; keeps loop tiling from ever competing (Fig 6, 7.1). *)
let compute_efficiency = 0.22

let predict (dev : Gpu.Device.t) ~prec pattern ~dims ~steps ?(tile = default_tile) () =
  let rad = pattern.Stencil.Pattern.radius in
  let n = Array.length dims in
  let cells = float (Array.fold_left ( * ) 1 dims) in
  (* reads: tile+halo per tile; writes: one per cell *)
  let expand = (float (tile + (2 * rad)) /. float tile) ** float n in
  let words_per_step = (cells *. expand) +. cells in
  let gm_words = words_per_step *. float steps in
  let bytes = gm_words *. float (Stencil.Grid.bytes_per_word prec) in
  let bw = Gpu.Device.by_prec prec dev.Gpu.Device.measured_gm_bw *. 1e9 *. gm_efficiency in
  let time_gm = bytes /. bw in
  (* high-order box stencils are compute-bound even without blocking *)
  let ops = Stencil.Pattern.ops_per_cell pattern in
  let eff_alu = Stencil.Sexpr.alu_efficiency ops in
  let div_pen = Model.Measure.fp64_division_penalty dev ~prec pattern in
  let time_comp =
    cells *. float steps *. float (Stencil.Sexpr.weighted_flops ops) *. div_pen
    /. (Gpu.Device.by_prec prec dev.Gpu.Device.peak_gflops
       *. 1e9 *. eff_alu *. compute_efficiency)
  in
  let seconds = Float.max time_gm time_comp in
  let flops = Stencil.Reference.total_flops pattern ~dims ~steps in
  { seconds; gflops = flops /. seconds /. 1e9; gm_words }
