(** Baseline: hybrid hexagonal/classical tiling (Grosser et al. [7, 9];
    paper §3).

    Hybrid tiling performs temporal blocking *without redundant
    computation*: one spatial dimension is covered by alternating
    upright/inverted tile shapes whose slopes resolve the temporal
    dependency (Fig 2), the remaining dimensions by classical wavefront
    skewing. Its defining trade-off versus N.5D blocking: no dimension
    is streamed, so all [N] dimensions must fit in on-chip memory at
    once, forcing smaller blocks and a higher ratio of boundary traffic
    — the reason it loses on 3D stencils (§7.1).

    The executor below implements split tiling over the first spatial
    dimension (upright trapezoids, then inverted fill-in tiles); it is
    non-redundant — every cell is updated exactly once per time-step —
    and bit-matches the reference. The analytic model captures the
    on-chip capacity limit and wavefront drain. *)

open An5d_core

(* ------------------------------------------------------------------ *)
(* Executor: split tiling along dimension 0                            *)
(* ------------------------------------------------------------------ *)

(** Advance [degree] steps non-redundantly with tile width [width]
    (must exceed [2 * rad * degree] so inverted tiles fit between
    upright ones). Tiles of each phase write disjoint row ranges and
    read only rows they themselves produced (or the preceding phase
    did), so a [pool] parallelizes each phase bit-identically. *)
let chunk ?pool pattern ~(machine : Gpu.Machine.t) ~degree:b ~width ~src ~dst =
  let rad = pattern.Stencil.Pattern.radius in
  let dims = src.Stencil.Grid.dims in
  let l = dims.(0) in
  if width <= 2 * rad * b then
    invalid_arg "Hybrid.chunk: tile width must exceed 2*rad*degree";
  let update = Stencil.Pattern.compile pattern in
  let ops = Stencil.Pattern.ops_per_cell pattern in
  let n = Array.length dims in
  let interior = Stencil.Grid.interior ~rad src in
  (* Time levels 0..b as full grids; every row is written exactly once
     per level, by either an upright or an inverted tile. *)
  let levels = Array.init (b + 1) (fun i -> if i = 0 then src else Stencil.Grid.create ~prec:src.Stencil.Grid.prec dims) in
  (* Compute one row [r] of level [tstep] from level [tstep - 1]:
     interior cells update, others copy. [counters] and [idx_buf] are
     the calling block's lane shard and scratch. *)
  let compute_row counters idx_buf ~tstep r =
    let lsrc = levels.(tstep - 1) and ldst = levels.(tstep) in
    let row_box =
      Poly.Box.make
        (Poly.Interval.make r r
        :: List.init (n - 1) (fun d -> Poly.Interval.make 0 (dims.(d + 1) - 1)))
    in
    Poly.Box.iter
      (fun idx ->
        if Poly.Box.contains interior idx then begin
          let read off =
            Array.iteri (fun d i -> idx_buf.(d) <- i + off.(d)) idx;
            Stencil.Grid.get lsrc idx_buf
          in
          Stencil.Grid.set ldst idx (update read);
          Gpu.Counters.add_ops counters ops;
          counters.Gpu.Counters.cells_updated <- counters.Gpu.Counters.cells_updated + 1;
          counters.Gpu.Counters.sm_reads <-
            counters.Gpu.Counters.sm_reads + List.length pattern.Stencil.Pattern.offsets - 1;
          counters.Gpu.Counters.sm_writes <- counters.Gpu.Counters.sm_writes + 1
        end
        else Stencil.Grid.set ldst idx (Stencil.Grid.get lsrc idx))
      row_box
  in
  let row_cells = Array.fold_left ( * ) 1 dims / l in
  (* The last upright tile absorbs the remainder so inter-center spacing
     never drops below [width] (needed for tile independence). *)
  let n_tiles = max 1 (l / width) in
  let tile_range k =
    let s = k * width in
    (s, if k = n_tiles - 1 then l else s + width)
  in
  (* Phase 1: upright trapezoids — shrink by rad per time level. *)
  Gpu.Machine.launch ?pool machine ~n_blocks:n_tiles ~n_thr:(min 1024 row_cells)
    (fun ctx ->
      let counters = ctx.Gpu.Machine.machine.Gpu.Machine.counters in
      let idx_buf = Array.make n 0 in
      let s, e = tile_range ctx.Gpu.Machine.block_id in
      counters.Gpu.Counters.gm_reads <-
        counters.Gpu.Counters.gm_reads + ((e - s) * row_cells);
      for tstep = 1 to b do
        for r = s + (rad * tstep) to e - (rad * tstep) - 1 do
          compute_row counters idx_buf ~tstep r
        done
      done);
  (* Phase 2: inverted tiles centered on tile boundaries (including both
     domain edges) — grow by rad per time level. *)
  Gpu.Machine.launch ?pool machine ~n_blocks:(n_tiles + 1) ~n_thr:(min 1024 row_cells)
    (fun ctx ->
      let counters = ctx.Gpu.Machine.machine.Gpu.Machine.counters in
      let idx_buf = Array.make n 0 in
      let c = if ctx.Gpu.Machine.block_id = n_tiles then l else ctx.Gpu.Machine.block_id * width in
      for tstep = 1 to b do
        let lo = max 0 (c - (rad * tstep)) and hi = min l (c + (rad * tstep)) in
        counters.Gpu.Counters.gm_reads <- counters.Gpu.Counters.gm_reads + ((hi - lo) * row_cells);
        for r = lo to hi - 1 do
          compute_row counters idx_buf ~tstep r
        done
      done;
      (* final level stored back *)
      let lo = max 0 (c - (rad * b)) and hi = min l (c + (rad * b)) in
      counters.Gpu.Counters.gm_writes <-
        counters.Gpu.Counters.gm_writes + ((hi - lo) * row_cells));
  let counters = machine.Gpu.Machine.counters in
  counters.Gpu.Counters.gm_writes <- counters.Gpu.Counters.gm_writes + (l * row_cells);
  Stencil.Grid.blit ~src:levels.(b) ~dst

let run ?domains ?pool pattern ~machine ~bt ~width ~steps g =
  Obs.Trace.with_span "execute"
    ~attrs:
      [ ("baseline", Obs.Trace.Str "hybrid"); ("bt", Obs.Trace.Int bt);
        ("steps", Obs.Trace.Int steps) ]
  @@ fun () ->
  let chunks = Execmodel.time_chunks ~bt ~it:steps in
  let a = Stencil.Grid.copy g and b = Stencil.Grid.copy g in
  let cur = ref a and nxt = ref b in
  let exec pool =
    List.iter
      (fun degree ->
        chunk ?pool pattern ~machine ~degree ~width ~src:!cur ~dst:!nxt;
        let t = !cur in
        cur := !nxt;
        nxt := t)
      chunks
  in
  (match pool with
  | Some _ -> exec pool
  | None -> Gpu.Pool.with_pool ?domains exec);
  !cur

(* ------------------------------------------------------------------ *)
(* Analytic model                                                      *)
(* ------------------------------------------------------------------ *)

(* Wavefront pipelines drain at tile boundaries; hexagonal schedules
   keep roughly this fraction of the machine busy (calibrated so hybrid
   is competitive on 2D stencils as in Fig 6). *)
let wavefront_efficiency = 0.80

type report = {
  seconds : float;
  gflops : float;
  tile_cells : int;  (** on-chip tile size the capacity limit allows *)
  bt : int;  (** temporal height actually usable *)
}

(** Performance prediction for the best hybrid configuration. All [N]
    dimensions must reside on chip: the tile (plus its [2*rad*bt]
    skewing skirt in every dimension) is capped by shared-memory
    capacity, which caps [bt] well below N.5D's for 3D stencils. *)
let predict (dev : Gpu.Device.t) ~prec pattern ~dims ~steps ~bt =
  let rad = pattern.Stencil.Pattern.radius in
  let n = Array.length dims in
  let word = Stencil.Grid.bytes_per_word prec in
  let capacity_words = dev.Gpu.Device.smem_per_sm / word / 2 in
  (* largest cubic tile with its skirt that fits on chip *)
  let edge_for b =
    let rec grow e =
      let total = Stencil.Shape.ipow (e + (2 * rad * b)) n in
      if total > capacity_words then e - 1 else grow (e + 1)
    in
    grow 1
  in
  let rec usable_bt b = if b <= 1 then 1 else if edge_for b >= 2 then b else usable_bt (b - 1) in
  let bt = usable_bt bt in
  let edge = max 1 (edge_for bt) in
  let tile_cells = Stencil.Shape.ipow edge n in
  let cells = float (Array.fold_left ( * ) 1 dims) in
  (* non-redundant: one load + one store per cell per chunk, plus the
     skirt exchanged with neighboring tiles *)
  let skirt = (float (edge + (2 * rad * bt)) /. float edge) ** float n in
  let gm_words = cells *. (skirt +. 1.0) *. (float steps /. float bt) in
  let time_gm =
    gm_words *. float word
    /. (Gpu.Device.by_prec prec dev.Gpu.Device.measured_gm_bw *. 1e9)
  in
  (* per-update shared traffic: all neighbors + own store *)
  let points = List.length pattern.Stencil.Pattern.offsets in
  let sm_words = cells *. float steps *. float points in
  let smem_eff = Gpu.Device.by_prec prec dev.Gpu.Device.smem_efficiency in
  let time_sm =
    sm_words *. float word
    /. (Gpu.Device.by_prec prec dev.Gpu.Device.measured_sm_bw *. 1e9 *. smem_eff)
  in
  let ops = Stencil.Pattern.ops_per_cell pattern in
  let eff_alu = Stencil.Sexpr.alu_efficiency ops in
  let div_pen = Model.Measure.fp64_division_penalty dev ~prec pattern in
  let time_comp =
    cells *. float steps *. float (Stencil.Sexpr.weighted_flops ops) *. div_pen
    /. (Gpu.Device.by_prec prec dev.Gpu.Device.peak_gflops *. 1e9 *. eff_alu)
  in
  let seconds =
    Float.max time_comp (Float.max time_gm time_sm) /. wavefront_efficiency
  in
  let flops = Stencil.Reference.total_flops pattern ~dims ~steps in
  { seconds; gflops = flops /. seconds /. 1e9; tile_cells; bt }

(** §6.3's large-scale parameter search: hybrid explores thousands of
    tile-size configurations; here the model is monotone in [bt] until
    the capacity cliff, so we sweep [bt] and keep the best. *)
let tune (dev : Gpu.Device.t) ~prec pattern ~dims ~steps =
  Obs.Trace.with_span "baseline.hybrid_tune"
    ~attrs:[ ("pattern", Obs.Trace.Str pattern.Stencil.Pattern.name) ]
  @@ fun () ->
  let candidates = List.init 20 (fun i -> i + 1) in
  List.fold_left
    (fun best bt ->
      let r = predict dev ~prec pattern ~dims ~steps ~bt in
      match best with Some b when b.gflops >= r.gflops -> best | _ -> Some r)
    None candidates
  |> Option.get
