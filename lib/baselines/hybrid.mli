(** Baseline: hybrid hexagonal/classical tiling (Grosser et al., §3) —
    non-redundant temporal blocking. The executor implements split
    tiling along the first spatial dimension (upright trapezoids, then
    inverted fill-in tiles); every cell is updated exactly once per
    time-step and the result bit-matches the reference. The analytic
    model captures the defining disadvantage versus N.5D: no dimension
    is streamed, so the on-chip capacity caps the tile in all [N]
    dimensions (§7.1's 3D weakness). *)

val wavefront_efficiency : float
(** Calibration: fraction of the machine hexagonal schedules keep busy
    across pipeline fill/drain. *)

val chunk :
  ?pool:Gpu.Pool.t ->
  Stencil.Pattern.t ->
  machine:Gpu.Machine.t ->
  degree:int ->
  width:int ->
  src:Stencil.Grid.t ->
  dst:Stencil.Grid.t ->
  unit
(** A [pool] parallelizes the independent tiles of each phase
    bit-identically.
    @raise Invalid_argument unless [width > 2*rad*degree]. *)

val run :
  ?domains:int ->
  ?pool:Gpu.Pool.t ->
  Stencil.Pattern.t ->
  machine:Gpu.Machine.t ->
  bt:int ->
  width:int ->
  steps:int ->
  Stencil.Grid.t ->
  Stencil.Grid.t

type report = {
  seconds : float;
  gflops : float;
  tile_cells : int;  (** on-chip tile size the capacity limit allows *)
  bt : int;  (** temporal height actually usable *)
}

val predict :
  Gpu.Device.t ->
  prec:Stencil.Grid.precision ->
  Stencil.Pattern.t ->
  dims:int array ->
  steps:int ->
  bt:int ->
  report

val tune :
  Gpu.Device.t ->
  prec:Stencil.Grid.precision ->
  Stencil.Pattern.t ->
  dims:int array ->
  steps:int ->
  report
(** Sweep the temporal height and keep the best (stand-in for the
    paper's large hybrid parameter search, §6.3). *)
