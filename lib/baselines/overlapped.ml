(** Baseline: overlapped tiling *without* dimension streaming
    (Overtile/Forma/SDSLc style, §3).

    All [N] dimensions are blocked; each thread block loads its block
    plus a halo of [bt * rad] in every dimension, advances [bt]
    time-steps locally, and stores the shrunken valid core. Compared to
    N.5D blocking, the halo is paid along *every* dimension — the
    redundancy ratio grows like [((B + 2*bt*rad) / B)^N] instead of
    [^(N-1)] — which is exactly why AN5D streams one dimension. This
    module exists for the ablation benchmark that quantifies that gap. *)

open An5d_core

type report = {
  seconds : float;
  gflops : float;
  redundancy : float;  (** loaded cells / useful cells *)
}

(* ------------------------------------------------------------------ *)
(* Executor                                                            *)
(* ------------------------------------------------------------------ *)

(** One temporal chunk of degree [b]: every block computes its halo'd
    region locally for [b] steps. Semantics match the reference
    bit-for-bit (same update expression, boundary cells frozen). Blocks
    store disjoint core boxes, so a [pool] parallelizes them
    bit-identically. *)
let chunk ?pool pattern ~(machine : Gpu.Machine.t) ~degree:b ~core ~src ~dst =
  let rad = pattern.Stencil.Pattern.radius in
  let dims = src.Stencil.Grid.dims in
  let n = Array.length dims in
  let update = Stencil.Pattern.compile pattern in
  let ops = Stencil.Pattern.ops_per_cell pattern in
  let halo = b * rad in
  let grid_box = Stencil.Grid.domain src in
  let interior = Stencil.Grid.interior ~rad src in
  let blocks_per_dim = Array.map (fun d -> (d + core - 1) / core) dims in
  let n_blocks = Array.fold_left ( * ) 1 blocks_per_dim in
  Stencil.Grid.blit ~src ~dst;
  Gpu.Machine.launch ?pool machine ~n_blocks ~n_thr:(min 1024 (core * core)) (fun ctx ->
      let counters = ctx.Gpu.Machine.machine.Gpu.Machine.counters in
      let idx_buf = Array.make n 0 in
      let id = ref ctx.Gpu.Machine.block_id in
      let origin =
        Array.init n (fun d ->
            let below =
              Array.fold_left ( * ) 1 (Array.sub blocks_per_dim (d + 1) (n - d - 1))
            in
            let k = !id / below in
            id := !id mod below;
            k * core)
      in
      let core_box =
        Poly.Box.make
          (List.init n (fun d ->
               Poly.Interval.make origin.(d) (min (origin.(d) + core - 1) (dims.(d) - 1))))
      in
      let work_box = Poly.Box.inter (Poly.Box.grow halo core_box) grid_box in
      counters.Gpu.Counters.gm_reads <-
        counters.Gpu.Counters.gm_reads + Poly.Box.volume work_box;
      (* local double-buffered computation over the halo'd box *)
      let local_src = Hashtbl.create 512 and local_dst = Hashtbl.create 512 in
      Poly.Box.iter
        (fun idx -> Hashtbl.replace local_src idx (Stencil.Grid.get src idx))
        work_box;
      let get_local tbl idx =
        match Hashtbl.find_opt tbl idx with
        | Some v -> v
        | None -> Stencil.Grid.get src idx (* clamped halo: stale, never stored *)
      in
      for tstep = 1 to b do
        let valid = Poly.Box.shrink (tstep * rad) (Poly.Box.grow halo core_box) in
        Poly.Box.iter
          (fun idx ->
            let v =
              if Poly.Box.contains interior idx && Poly.Box.contains valid idx then begin
                let read off =
                  Array.iteri (fun d i -> idx_buf.(d) <- i + off.(d)) idx;
                  get_local local_src (Array.copy idx_buf)
                in
                let v = update read in
                Gpu.Counters.add_ops counters ops;
                counters.Gpu.Counters.cells_updated <-
                  counters.Gpu.Counters.cells_updated + 1;
                v
              end
              else get_local local_src idx
            in
            Hashtbl.replace local_dst idx v)
          work_box;
        Hashtbl.reset local_src;
        Hashtbl.iter (Hashtbl.replace local_src) local_dst;
        Hashtbl.reset local_dst
      done;
      Poly.Box.iter
        (fun idx ->
          counters.Gpu.Counters.gm_writes <- counters.Gpu.Counters.gm_writes + 1;
          Stencil.Grid.set dst idx (get_local local_src idx))
        core_box)

(** Run [steps] steps with temporal chunks of [bt] on core blocks of
    edge [core]. [domains]/[pool] parallelize the blocks of each chunk. *)
let run ?domains ?pool pattern ~machine ~bt ~core ~steps g =
  Obs.Trace.with_span "execute"
    ~attrs:
      [ ("baseline", Obs.Trace.Str "overlapped"); ("bt", Obs.Trace.Int bt);
        ("steps", Obs.Trace.Int steps) ]
  @@ fun () ->
  let chunks = Execmodel.time_chunks ~bt ~it:steps in
  let a = Stencil.Grid.copy g and b = Stencil.Grid.copy g in
  let cur = ref a and nxt = ref b in
  let exec pool =
    List.iter
      (fun degree ->
        chunk ?pool pattern ~machine ~degree ~core ~src:!cur ~dst:!nxt;
        let t = !cur in
        cur := !nxt;
        nxt := t)
      chunks
  in
  (match pool with
  | Some _ -> exec pool
  | None -> Gpu.Pool.with_pool ?domains exec);
  !cur

(* ------------------------------------------------------------------ *)
(* Analytic model                                                      *)
(* ------------------------------------------------------------------ *)

let predict (dev : Gpu.Device.t) ~prec pattern ~dims ~steps ~bt ~core =
  let rad = pattern.Stencil.Pattern.radius in
  let n = Array.length dims in
  let cells = float (Array.fold_left ( * ) 1 dims) in
  let redundancy = (float (core + (2 * bt * rad)) /. float core) ** float n in
  let words = cells *. (redundancy +. 1.0) *. (float steps /. float bt) in
  let bytes = words *. float (Stencil.Grid.bytes_per_word prec) in
  let bw = Gpu.Device.by_prec prec dev.Gpu.Device.measured_gm_bw *. 1e9 in
  let seconds = bytes /. bw in
  let flops = Stencil.Reference.total_flops pattern ~dims ~steps in
  { seconds; gflops = flops /. seconds /. 1e9; redundancy }
