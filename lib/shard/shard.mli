(** Communication-avoiding halo-exchange domain decomposition and the
    transports that move halo planes between shard holders.

    A grid is split along the streaming dimension into [shards]
    contiguous owner ranges; each shard holds a private buffer covering
    its owned planes plus ghost zones of [halo = bt * radius] planes on
    each interior side. The wide ghost zone is the temporal-blocking
    trade one level up: a kernel chunk of degree [b <= bt] invalidates
    at most [b * radius] planes inward from a subgrid edge, so every
    owned plane stays bit-correct for a whole chunk and halos need
    refreshing only once per chunk — [steps / bt] exchanges instead of
    [steps] (docs/SHARDING.md spells out the cone argument). That trade
    is exactly what makes a process boundary affordable: the same
    schedule runs across OS processes with [bt×] fewer wire crossings.

    Where the halo planes actually move is behind {!Transport}: the
    {!Transport.in_process} instance is the phase-1 zero-copy
    [Grid.sub]+[blit] path (no full-grid buffer allocated after setup —
    the [shard_grid_allocations] counter asserts [2*shards + 1] per
    run); {!Transport.Pipe} ships planes as length-prefixed raw frames
    between pre-forked worker processes over socketpairs. The schedule
    itself ({!run_via}) is transport-agnostic, so both paths execute
    bit-identical grids and counters — and any future backend (TCP
    ranks, devices) is one more [Transport.S] instance.

    This module owns the decomposition geometry, the round/exchange
    schedule and the transports only; kernel execution is injected by
    the caller ({!An5d_core.Blocking} passes its [kernel_call]),
    keeping this layer below the executor in the dependency order. *)

(** Decomposition of [l] planes into owner ranges with ghost extents. *)
type t

val make : shards:int -> halo:int -> l:int -> t
(** [make ~shards ~halo ~l] splits planes [0, l) into [shards]
    contiguous owner ranges of near-equal size ([owned k] is
    [[k*l/shards, (k+1)*l/shards)], so non-divisible sizes spread the
    remainder) and extends each by up to [halo] ghost planes on every
    side interior to the grid. Ghost ranges may span several owners
    (shards narrower than the halo are legal; the exchange then pulls
    from each overlapped owner).
    @raise Invalid_argument when [shards < 1], [halo < 0], or
    [shards > l] (every shard must own at least one plane). *)

val shards : t -> int

val halo : t -> int

val owned : t -> int -> int * int
(** Global plane range [lo, hi) owned by a shard. Owner ranges
    partition [0, l). *)

val extent : t -> int -> int * int
(** Global plane range of a shard's private buffer: its owned range
    plus ghost zones, clamped to [0, l). *)

(** The kernel-execution hook every transport fans out — the same
    signature {!run} has always taken: advance the private subgrid
    [src] by [degree] steps into [dst] exactly as the resident executor
    would a full grid. *)
type advance_fn =
  shard:int -> degree:int -> src:Stencil.Grid.t -> dst:Stencil.Grid.t -> unit

(** {1 Transports}

    One instance = one way of holding shard buffers and moving halo
    planes between them. The driver ({!run_via}) speaks the same
    four-phase schedule to every instance: per chunk, a
    [send_halo]/[recv_halo] pair per ghost piece, a [barrier], an
    [advance] per shard, a [barrier]; then one [gather] per shard at
    the end. Instances may execute eagerly (in-process blits) or defer
    fan-out to the barrier (worker processes) — the schedule cannot
    tell the difference, which is the bit-identity argument. *)
module Transport : sig
  exception Failed of { worker : int; reason : string }
  (** A transport endpoint died or misbehaved (closed pipe, timeout,
      malformed frame, version mismatch). Raised only by the [Pipe]
      instance; the worker registry above turns it into a respawn plus
      an in-process retry, never a dropped request. *)

  module type S = sig
    val send_halo : owner:int -> glo:int -> ghi:int -> unit
    (** Stage global planes [glo, ghi) out of [owner]'s current buffer.
        Always immediately followed by the matching {!recv_halo}. *)

    val recv_halo : shard:int -> glo:int -> ghi:int -> unit
    (** Complete the staged move into [shard]'s ghost planes. *)

    val advance : shard:int -> degree:int -> unit
    (** Schedule [shard]'s buffers to advance [degree] steps. May
        defer: the work is only guaranteed done — and the double
        buffers flipped — after the next {!barrier}. *)

    val barrier : unit -> unit
    (** Complete all scheduled work. After a barrier every buffer is at
        the same time level. *)

    val gather : shard:int -> into:Stencil.Grid.t -> unit
    (** Copy [shard]'s owned planes into [into] (a view of the output
        grid with exactly the owned extent). *)

    val close : unit -> unit
    (** Release the transport (send workers their Done frame). Never
        raises. *)
  end

  val in_process : ?pool:Gpu.Pool.t -> t -> grid:Stencil.Grid.t ->
    advance:advance_fn -> (module S)
  (** The phase-1 zero-copy path as a transport instance: per-shard
      double buffers copied out of [grid] at creation ([2*shards]
      counted allocations), halo moves as [Grid.sub]+[blit], advances
      fanned over the [pool] lanes (when given, one shard per lane) at
      the barrier. *)

  (** Process-level transport: halo planes cross OS process boundaries
      as binary frames over socketpairs — a 4-byte big-endian length,
      a tag byte, 4-byte big-endian integer fields, and raw
      little-endian grid words ({!Stencil.Grid.to_bytes}) as the plane
      payload, reusing the serve wire protocol's length-prefix framing
      discipline (docs/SHARDING.md §phase 2 has the frame table).

      The parent is the star point: a cross-worker ghost piece moves
      owner worker → parent → destination worker (a [Pull] then a
      [Push]); a piece whose owner and destination live in the same
      worker is one worker-local [Copy] frame and never crosses the
      wire. Wire traffic is counted by [halo_bytes_on_wire]; request →
      reply latencies by [transport_roundtrip_us]. *)
  module Pipe : sig
    val protocol_version : int

    val max_frame_bytes : int

    val connect : ?plane_bytes:int -> t -> fds:Unix.file_descr array ->
      worker_of:int array -> (module S)
    (** Parent-side transport over one descriptor per worker process
        (the parent end of each socketpair), with [worker_of] mapping
        every shard to the worker holding it. The caller has already
        spawned the workers and completed their hello exchange
        ([An5d_serve.Workers] owns that lifecycle). When [plane_bytes]
        (bytes per grid plane) is given, every incoming plane frame is
        length-checked against its declared range and a wrong-length
        body raises {!Failed} attributed to the sending worker — the
        garbage-frame defense the registry's retry path relies on.
        @raise Invalid_argument when [worker_of] does not cover the
        decomposition or indexes outside [fds]. *)

    val serve : fd:Unix.file_descr -> t -> owned:int list ->
      grid:Stencil.Grid.t -> advance:advance_fn -> unit
    (** Worker-side loop for one sharded run: copy the [owned] shards'
        extents out of [grid] into private double buffers, send the
        hello frame, then answer halo/advance/gather frames until the
        parent's Done. [advance] is the same closure the in-process
        path injects, so grids and counters cannot diverge across
        transports.
        @raise Failed on a malformed or version-mismatched parent
        frame. *)

    val serve_garbage : fd:Unix.file_descr -> unit
    (** Fault-injection stand-in for {!serve}: completes the hello
        exchange, then answers every parent frame with a wrong-length
        junk plane body until Done or a write failure. Drives the
        garbage-frame row of the worker fault matrix; never raises. *)

    val send_hello : fd:Unix.file_descr -> unit
    (** The worker's opening frame (version + pid); [serve] sends it
        itself — exposed for fault-injection harnesses that stand in
        for a worker. *)

    val read_hello : worker:int -> Unix.file_descr -> int
    (** Parent side of the hello exchange; returns the worker's pid.
        @raise Failed on version mismatch, closed pipe or timeout. *)
  end
end

(** {1 Observability}

    Counters reported to {!Obs.Metrics} (docs/OBSERVABILITY.md):
    [halo_exchanges] — exchange rounds performed (one per temporal
    chunk when [shards > 1], on every transport); [halo_words_exchanged]
    — grid words moved into ghost zones; [shard_steps] — time-steps
    advanced summed over shards (chunk degree × shards per round);
    [shard_grid_allocations] — full grid buffers allocated by this
    module (setup and final assembly only: [2 * shards + 1] per
    in-process run, independent of the step count — the
    no-allocation-on-the-hot-path witness; the output grid only under
    a [Pipe] transport, whose shard buffers live in the workers);
    [halo_bytes_on_wire] — payload bytes that crossed a pipe (zero for
    in-process runs); [transport_roundtrip_us] — histogram of parent →
    worker → parent frame round trips. *)

val run_via : t -> chunks:int list -> prec:Stencil.Grid.precision ->
  dims:int array -> plane_words:int -> (module Transport.S) -> Stencil.Grid.t
(** Drive the sharded schedule through a transport: per temporal chunk,
    refresh every ghost zone from its owners (all buffers at the same
    time level — exactly one [halo_exchanges] tick per chunk when
    [shards > 1]), schedule every shard's advance, barrier, and flip;
    finally assemble the owned planes into a fresh output grid of
    [dims]. Chunk degrees must not exceed the [halo / radius] budget
    the decomposition was built for — callers derive both from the
    same [bt]. *)

val run :
  ?pool:Gpu.Pool.t ->
  t ->
  chunks:int list ->
  grid:Stencil.Grid.t ->
  advance:advance_fn ->
  Stencil.Grid.t
(** {!run_via} over {!Transport.in_process}: the phase-1 intra-process
    path, unchanged — per chunk, refresh ghosts with zero-copy blits,
    fan [advance] over the shards (each on its own pool lane when a
    [pool] is given), flip the per-shard double buffers; return a
    freshly assembled grid of the owned planes (subgrid edges get the
    §4.1 boundary treatment; the ghost width makes that correct, see
    docs/SHARDING.md).
    @raise Invalid_argument when [grid] has fewer planes than the
    decomposition was built for. *)
