(** Communication-avoiding halo-exchange domain decomposition.

    A grid is split along the streaming dimension into [shards]
    contiguous owner ranges; each shard holds a private buffer covering
    its owned planes plus ghost zones of [halo = bt * radius] planes on
    each interior side. The wide ghost zone is the temporal-blocking
    trade one level up: a kernel chunk of degree [b <= bt] invalidates
    at most [b * radius] planes inward from a subgrid edge, so every
    owned plane stays bit-correct for a whole chunk and halos need
    refreshing only once per chunk — [steps / bt] exchanges instead of
    [steps] (docs/SHARDING.md spells out the cone argument).

    The exchange is zero-copy on the hot path: ghost planes are pulled
    from the owners' buffers with {!Stencil.Grid.blit} over
    {!Stencil.Grid.sub} views — no full-grid buffer is allocated after
    setup, which the [shard_grid_allocations] counter asserts in the
    tests. This module owns the decomposition geometry and the
    round/exchange schedule only; the actual kernel execution is
    injected by the caller ({!An5d_core.Blocking} passes its
    [kernel_call]), keeping this layer below the executor in the
    dependency order. *)

(** Decomposition of [l] planes into owner ranges with ghost extents. *)
type t

val make : shards:int -> halo:int -> l:int -> t
(** [make ~shards ~halo ~l] splits planes [0, l) into [shards]
    contiguous owner ranges of near-equal size ([owned k] is
    [[k*l/shards, (k+1)*l/shards)], so non-divisible sizes spread the
    remainder) and extends each by up to [halo] ghost planes on every
    side interior to the grid. Ghost ranges may span several owners
    (shards narrower than the halo are legal; the exchange then pulls
    from each overlapped owner).
    @raise Invalid_argument when [shards < 1], [halo < 0], or
    [shards > l] (every shard must own at least one plane). *)

val shards : t -> int

val halo : t -> int

val owned : t -> int -> int * int
(** Global plane range [lo, hi) owned by a shard. Owner ranges
    partition [0, l). *)

val extent : t -> int -> int * int
(** Global plane range of a shard's private buffer: its owned range
    plus ghost zones, clamped to [0, l). *)

(** {1 Observability}

    Counters reported to {!Obs.Metrics} (docs/OBSERVABILITY.md):
    [halo_exchanges] — exchange rounds performed (one per temporal
    chunk when [shards > 1]); [halo_words_exchanged] — grid words
    blitted into ghost zones; [shard_steps] — time-steps advanced
    summed over shards (chunk degree × shards per round);
    [shard_grid_allocations] — full grid buffers allocated by this
    module (setup and final assembly only: [2 * shards + 1] per run,
    independent of the step count — the no-allocation-on-the-hot-path
    witness). *)

val run :
  ?pool:Gpu.Pool.t ->
  t ->
  chunks:int list ->
  grid:Stencil.Grid.t ->
  advance:
    (shard:int -> degree:int -> src:Stencil.Grid.t -> dst:Stencil.Grid.t -> unit) ->
  Stencil.Grid.t
(** Run the sharded schedule: per temporal chunk, refresh every ghost
    zone from its owners' buffers (all buffers are at the same time
    level), fan [advance] out over the shards — one call per shard,
    each on its own pool lane when a [pool] is given — and flip the
    per-shard double buffers. [advance ~shard ~degree ~src ~dst] must
    advance the private subgrid [src] by [degree] steps into [dst]
    exactly as the resident executor would a full grid (subgrid edges
    get the §4.1 boundary treatment; the ghost width makes that
    correct, see docs/SHARDING.md). Returns a freshly assembled grid
    of the owned planes. Chunk degrees must not exceed the [halo /
    radius] budget the decomposition was built for — callers derive
    both from the same [bt].
    @raise Invalid_argument when [grid] has fewer planes than the
    decomposition was built for. *)
