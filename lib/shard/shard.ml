(* Halo-exchange domain decomposition, the round/exchange schedule and
   the transports that move halo planes. See shard.mli and
   docs/SHARDING.md for the cone argument that makes the exchange
   cadence correct. *)

type range = { lo : int; hi : int }

(* One ghost-refresh move: global planes [glo, ghi) are pulled into a
   shard's buffer from the buffer of [owner], which owns them. *)
type piece = { owner : int; glo : int; ghi : int }

type t = {
  n : int;
  l : int;
  halo_w : int;
  owned_r : range array;  (** disjoint cover of [0, l) *)
  ext_r : range array;  (** owned plus ghost zones, clamped to [0, l) *)
  pulls : piece array array;  (** per shard, split at owner boundaries *)
}

let shards t = t.n

let halo t = t.halo_w

let owned t k =
  let r = t.owned_r.(k) in
  (r.lo, r.hi)

let extent t k =
  let r = t.ext_r.(k) in
  (r.lo, r.hi)

let make ~shards:n ~halo:h ~l =
  if n < 1 then invalid_arg "Shard.make: shards must be >= 1";
  if h < 0 then invalid_arg "Shard.make: negative halo width";
  if n > l then
    invalid_arg
      (Fmt.str "Shard.make: %d shards over %d planes (every shard must own a plane)"
         n l);
  let owned_r =
    Array.init n (fun k -> { lo = k * l / n; hi = (k + 1) * l / n })
  in
  let ext_r =
    Array.init n (fun k ->
        { lo = max 0 (owned_r.(k).lo - h); hi = min l (owned_r.(k).hi + h) })
  in
  (* Owner of a global plane. Setup-time only, so a scan is fine. *)
  let owner_of p =
    let rec go k = if p < owned_r.(k).hi then k else go (k + 1) in
    go 0
  in
  (* A ghost range may span several owners when shards are narrower
     than the halo; split it so every piece moves from one buffer. *)
  let pulls_for k =
    let split (a, b) =
      let rec go acc glo =
        if glo >= b then List.rev acc
        else
          let o = owner_of glo in
          let stop = min b owned_r.(o).hi in
          go ({ owner = o; glo; ghi = stop } :: acc) stop
      in
      go [] a
    in
    Array.of_list
      (List.concat_map split
         [ (ext_r.(k).lo, owned_r.(k).lo); (owned_r.(k).hi, ext_r.(k).hi) ])
  in
  { n; l; halo_w = h; owned_r; ext_r; pulls = Array.init n pulls_for }

(* ------------------------------------------------------------------ *)
(* Observability                                                       *)
(* ------------------------------------------------------------------ *)

let m_halo_exchanges = Obs.Metrics.counter "halo_exchanges"

let m_halo_words = Obs.Metrics.counter "halo_words_exchanged"

let m_shard_steps = Obs.Metrics.counter "shard_steps"

let m_grid_allocs = Obs.Metrics.counter "shard_grid_allocations"

let m_wire_bytes = Obs.Metrics.counter "halo_bytes_on_wire"

let h_roundtrip = Obs.Metrics.histogram "transport_roundtrip_us"

(* Every full grid buffer this module allocates goes through one of
   these — the counter is the no-allocation-on-the-hot-path witness
   (2 * shards + 1 per in-process run, independent of the chunk
   count). *)
let counted_copy g =
  Obs.Metrics.incr m_grid_allocs;
  Stencil.Grid.copy g

let counted_create ~prec dims =
  Obs.Metrics.incr m_grid_allocs;
  Stencil.Grid.create ~prec dims

(* Zero-copy view of global planes [glo, ghi) inside shard [k]'s
   private buffer. *)
let view t k buf ~glo ~ghi =
  let base = t.ext_r.(k).lo in
  Stencil.Grid.sub buf ~lo:(glo - base) ~hi:(ghi - base)

(* ------------------------------------------------------------------ *)
(* The transport abstraction                                           *)
(* ------------------------------------------------------------------ *)

type advance_fn =
  shard:int -> degree:int -> src:Stencil.Grid.t -> dst:Stencil.Grid.t -> unit

(* [owned] under its unshadowed name, for scopes that bind an [owned]
   shard list of their own. *)
let owned_range = owned

module Transport = struct
  exception Failed of { worker : int; reason : string }

  module type S = sig
    val send_halo : owner:int -> glo:int -> ghi:int -> unit

    val recv_halo : shard:int -> glo:int -> ghi:int -> unit

    val advance : shard:int -> degree:int -> unit

    val barrier : unit -> unit

    val gather : shard:int -> into:Stencil.Grid.t -> unit

    val close : unit -> unit
  end

  (* ---------------------------------------------------------------- *)
  (* In-process instance: the zero-copy blit path                     *)
  (* ---------------------------------------------------------------- *)

  let in_process ?pool t ~grid ~(advance : advance_fn) =
    (* Per-shard double buffers over the extended (owned + ghost)
       range, both starting as copies of the input — the same
       double-buffered host initialization as the resident path, per
       shard. *)
    let cur =
      Array.init t.n (fun k ->
          let lo, hi = extent t k in
          counted_copy (Stencil.Grid.sub grid ~lo ~hi))
    in
    let nxt = Array.init t.n (fun k -> counted_copy cur.(k)) in
    let adv = advance in
    let pending_halo = ref None in
    let pending_adv : (int * int) list ref = ref [] in
    let module M = struct
      (* Sources are owned planes and destinations ghost planes, so no
         move ever reads a region another move writes — send/recv pairs
         complete eagerly as one blit. *)
      let send_halo ~owner ~glo ~ghi =
        pending_halo := Some (view t owner cur.(owner) ~glo ~ghi)

      let recv_halo ~shard ~glo ~ghi =
        match !pending_halo with
        | Some src ->
            pending_halo := None;
            Stencil.Grid.blit ~src ~dst:(view t shard cur.(shard) ~glo ~ghi)
        | None ->
            invalid_arg "Shard.Transport: recv_halo without a matching send_halo"

      (* Advances only queue; the next barrier fans them out — over the
         pool lanes when one is given — then flips the double buffers,
         so every transport sees the same schedule: advance each shard,
         then one barrier per chunk. *)
      let advance ~shard ~degree = pending_adv := (shard, degree) :: !pending_adv

      let barrier () =
        match !pending_adv with
        | [] -> ()
        | l ->
            let work = Array.of_list (List.rev l) in
            let run_one i =
              let k, degree = work.(i) in
              adv ~shard:k ~degree ~src:cur.(k) ~dst:nxt.(k)
            in
            (match pool with
            | Some p when Gpu.Pool.size p > 1 ->
                Gpu.Pool.run p ~n:(Array.length work) (fun ~lane:_ i -> run_one i)
            | _ ->
                for i = 0 to Array.length work - 1 do
                  run_one i
                done);
            pending_adv := [];
            Array.iter
              (fun (k, _) ->
                let tmp = cur.(k) in
                cur.(k) <- nxt.(k);
                nxt.(k) <- tmp)
              work

      let gather ~shard ~into =
        let lo, hi = owned t shard in
        Stencil.Grid.blit ~src:(view t shard cur.(shard) ~glo:lo ~ghi:hi) ~dst:into

      let close () = ()
    end in
    (module M : S)

  (* ---------------------------------------------------------------- *)
  (* Pipe instance: pre-forked worker processes over socketpairs      *)
  (* ---------------------------------------------------------------- *)

  module Pipe = struct
    (* Binary tagged frames, reusing the wire layer's framing
       discipline: a 4-byte big-endian length, then a 1-byte tag, then
       the payload — integers as 4-byte big-endian fields, halo planes
       as raw little-endian grid words ({!Stencil.Grid.to_bytes}).
       JSON would deserialize every plane float; raw frames keep the
       wire cost at memcpy + pipe bandwidth. *)

    let max_frame_bytes = 256 * 1024 * 1024

    (* parent -> worker *)
    let tag_pull = 'P'

    let tag_push = 'U'

    let tag_copy = 'C'

    let tag_advance = 'A'

    let tag_barrier = 'B'

    let tag_gather = 'G'

    let tag_done = 'D'

    (* worker -> parent *)
    let tag_hello = 'H'

    let tag_planes = 'L'

    let tag_ack = 'K'

    let tag_error = 'E'

    let protocol_version = 1

    let put_i32 b off v =
      Bytes.set_uint8 b off ((v lsr 24) land 0xFF);
      Bytes.set_uint8 b (off + 1) ((v lsr 16) land 0xFF);
      Bytes.set_uint8 b (off + 2) ((v lsr 8) land 0xFF);
      Bytes.set_uint8 b (off + 3) (v land 0xFF)

    let get_i32 b off =
      (Bytes.get_uint8 b off lsl 24)
      lor (Bytes.get_uint8 b (off + 1) lsl 16)
      lor (Bytes.get_uint8 b (off + 2) lsl 8)
      lor Bytes.get_uint8 b (off + 3)

    let fail worker reason = raise (Failed { worker; reason })

    let read_exact ~worker fd buf len =
      let rec go off =
        if off < len then
          match Unix.read fd buf off (len - off) with
          | 0 -> fail worker "worker closed the pipe"
          | n -> go (off + n)
          | exception Unix.Unix_error (Unix.EINTR, _, _) -> go off
          | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
              fail worker "timeout waiting for worker"
          | exception Unix.Unix_error (e, _, _) ->
              fail worker (Unix.error_message e)
      in
      go 0

    let write_all ~worker fd bytes =
      let len = Bytes.length bytes in
      let rec go off =
        if off < len then
          match Unix.write fd bytes off (len - off) with
          | n -> go (off + n)
          | exception Unix.Unix_error (Unix.EINTR, _, _) -> go off
          | exception Unix.Unix_error (e, _, _) ->
              fail worker (Unix.error_message e)
      in
      go 0

    (* One frame: ints then an optional raw payload, gathered into a
       single write so a frame is never interleaved by signals. *)
    let write_frame ?(worker = -1) fd tag ints payload =
      let plen = match payload with None -> 0 | Some p -> Bytes.length p in
      let body_len = 1 + (4 * List.length ints) + plen in
      let b = Bytes.create (4 + body_len) in
      put_i32 b 0 body_len;
      Bytes.set b 4 tag;
      List.iteri (fun i v -> put_i32 b (5 + (4 * i)) v) ints;
      (match payload with
      | None -> ()
      | Some p -> Bytes.blit p 0 b (5 + (4 * List.length ints)) plen);
      write_all ~worker fd b

    let read_frame ?(worker = -1) fd =
      let hdr = Bytes.create 4 in
      read_exact ~worker fd hdr 4;
      let len = get_i32 hdr 0 in
      if len < 1 || len > max_frame_bytes then
        fail worker (Printf.sprintf "bad frame length %d" len);
      let body = Bytes.create len in
      read_exact ~worker fd body len;
      (Bytes.get body 0, Bytes.sub body 1 (len - 1))

    let expect_ack ~worker fd =
      match read_frame ~worker fd with
      | t, _ when t = tag_ack -> ()
      | t, body when t = tag_error ->
          fail worker ("worker error: " ^ Bytes.to_string body)
      | t, _ -> fail worker (Printf.sprintf "expected ack, got tag %C" t)

    let expect_planes ~worker fd =
      match read_frame ~worker fd with
      | t, body when t = tag_planes -> body
      | t, body when t = tag_error ->
          fail worker ("worker error: " ^ Bytes.to_string body)
      | t, _ -> fail worker (Printf.sprintf "expected planes, got tag %C" t)

    let send_hello ~fd =
      let b = Bytes.create 8 in
      put_i32 b 0 protocol_version;
      put_i32 b 4 (Unix.getpid ());
      write_frame fd tag_hello [] (Some b)

    let read_hello ~worker fd =
      match read_frame ~worker fd with
      | t, body when t = tag_hello && Bytes.length body = 8 ->
          let v = get_i32 body 0 in
          if v <> protocol_version then
            fail worker
              (Printf.sprintf "transport version mismatch: worker %d, parent %d" v
                 protocol_version);
          get_i32 body 4
      | t, _ -> fail worker (Printf.sprintf "expected hello, got tag %C" t)

    (* -------------------------------------------------------------- *)
    (* Parent side                                                    *)
    (* -------------------------------------------------------------- *)

    let now_us () = Unix.gettimeofday () *. 1e6

    (* The parent is the star point of the exchange: owner worker ->
       parent -> destination worker for cross-worker pieces, one local
       Copy frame when both shards live in the same worker. The parent
       holds no grid data between frames, so its memory stays O(largest
       halo piece). *)
    let connect ?plane_bytes t ~fds ~worker_of =
      Array.iter
        (fun w ->
          if w < 0 || w >= Array.length fds then
            invalid_arg "Shard.Transport.Pipe.connect: worker_of out of range")
        worker_of;
      if Array.length worker_of <> t.n then
        invalid_arg "Shard.Transport.Pipe.connect: worker_of must cover every shard";
      let pending = ref None in
      let adv_sent = Array.make (Array.length fds) false in
      (* With a known plane size, a wrong-length plane frame is caught
         here and attributed to the worker that sent it — the garbage
         frame becomes a [Failed] the registry can pin on a worker
         instead of an unattributed blit error. *)
      let check_planes ~worker ~planes:n body =
        (match plane_bytes with
        | Some pb when Bytes.length body <> n * pb ->
            fail worker
              (Printf.sprintf "garbage halo frame: %d bytes for %d planes"
                 (Bytes.length body) n)
        | _ -> ());
        body
      in
      let module M = struct
        let send_halo ~owner ~glo ~ghi = pending := Some (owner, glo, ghi)

        let recv_halo ~shard ~glo ~ghi =
          match !pending with
          | None ->
              invalid_arg "Shard.Transport: recv_halo without a matching send_halo"
          | Some (owner, sglo, sghi) ->
              pending := None;
              if sglo <> glo || sghi <> ghi then
                invalid_arg "Shard.Transport: recv_halo range mismatch";
              let wsrc = worker_of.(owner) and wdst = worker_of.(shard) in
              if wsrc = wdst then
                write_frame ~worker:wdst fds.(wdst) tag_copy
                  [ owner; shard; glo; ghi ] None
              else begin
                let t0 = now_us () in
                write_frame ~worker:wsrc fds.(wsrc) tag_pull [ owner; glo; ghi ]
                  None;
                let planes =
                  check_planes ~worker:wsrc ~planes:(ghi - glo)
                    (expect_planes ~worker:wsrc fds.(wsrc))
                in
                Obs.Metrics.observe h_roundtrip (now_us () -. t0);
                write_frame ~worker:wdst fds.(wdst) tag_push [ shard; glo; ghi ]
                  (Some planes);
                Obs.Metrics.add m_wire_bytes (2 * Bytes.length planes)
              end

        let advance ~shard ~degree =
          let w = worker_of.(shard) in
          if not adv_sent.(w) then begin
            adv_sent.(w) <- true;
            write_frame ~worker:w fds.(w) tag_advance [ degree ] None
          end

        let barrier () =
          let t0 = now_us () in
          Array.iteri
            (fun w fd -> write_frame ~worker:w fd tag_barrier [] None)
            fds;
          Array.iteri (fun w fd -> expect_ack ~worker:w fd) fds;
          Array.fill adv_sent 0 (Array.length adv_sent) false;
          Obs.Metrics.observe h_roundtrip (now_us () -. t0)

        let gather ~shard ~into =
          let w = worker_of.(shard) in
          write_frame ~worker:w fds.(w) tag_gather [ shard ] None;
          let olo, ohi = owned_range t shard in
          let planes =
            check_planes ~worker:w ~planes:(ohi - olo)
              (expect_planes ~worker:w fds.(w))
          in
          Obs.Metrics.add m_wire_bytes (Bytes.length planes);
          Stencil.Grid.blit_of_bytes into planes

        let close () =
          Array.iteri
            (fun w fd ->
              try write_frame ~worker:w fd tag_done [] None
              with Failed _ -> ())
            fds
      end in
      (module M : S)

    (* -------------------------------------------------------------- *)
    (* Worker side                                                    *)
    (* -------------------------------------------------------------- *)

    (* Serve one sharded run over [fd]: allocate double buffers for the
       owned shards, answer halo/advance/gather frames until Done. The
       kernel execution is the injected [advance] — exactly the closure
       the in-process path uses, so grids and counters cannot diverge
       across transports. Raises [Failed] on a malformed parent frame
       (the worker host decides whether to die or resync). *)
    let serve ~fd t ~owned ~grid ~(advance : advance_fn) =
      let mine = Array.make t.n false in
      List.iter (fun k -> mine.(k) <- true) owned;
      let need k op =
        if k < 0 || k >= t.n || not mine.(k) then
          fail (-1) (Printf.sprintf "%s for shard %d not owned by this worker" op k)
      in
      let cur =
        Array.init t.n (fun k ->
            if mine.(k) then
              let lo, hi = extent t k in
              Some (Stencil.Grid.copy (Stencil.Grid.sub grid ~lo ~hi))
            else None)
      in
      let nxt =
        Array.init t.n (fun k -> Option.map Stencil.Grid.copy cur.(k))
      in
      let buf arr k = Option.get arr.(k) in
      send_hello ~fd;
      let running = ref true in
      while !running do
        match read_frame fd with
        | tag, body when tag = tag_pull ->
            let k = get_i32 body 0 and glo = get_i32 body 4 and ghi = get_i32 body 8 in
            need k "pull";
            write_frame fd tag_planes []
              (Some (Stencil.Grid.to_bytes (view t k (buf cur k) ~glo ~ghi)))
        | tag, body when tag = tag_push ->
            let k = get_i32 body 0 and glo = get_i32 body 4 and ghi = get_i32 body 8 in
            need k "push";
            let planes = Bytes.sub body 12 (Bytes.length body - 12) in
            Stencil.Grid.blit_of_bytes (view t k (buf cur k) ~glo ~ghi) planes
        | tag, body when tag = tag_copy ->
            let src = get_i32 body 0
            and dst = get_i32 body 4
            and glo = get_i32 body 8
            and ghi = get_i32 body 12 in
            need src "copy";
            need dst "copy";
            Stencil.Grid.blit
              ~src:(view t src (buf cur src) ~glo ~ghi)
              ~dst:(view t dst (buf cur dst) ~glo ~ghi)
        | tag, body when tag = tag_advance ->
            let degree = get_i32 body 0 in
            List.iter
              (fun k ->
                advance ~shard:k ~degree ~src:(buf cur k) ~dst:(buf nxt k);
                let tmp = cur.(k) in
                cur.(k) <- nxt.(k);
                nxt.(k) <- tmp)
              owned
        | tag, _ when tag = tag_barrier -> write_frame fd tag_ack [] None
        | tag, body when tag = tag_gather ->
            let k = get_i32 body 0 in
            need k "gather";
            let lo, hi = owned_range t k in
            write_frame fd tag_planes []
              (Some (Stencil.Grid.to_bytes (view t k (buf cur k) ~glo:lo ~ghi:hi)))
        | tag, _ when tag = tag_done -> running := false
        | tag, _ -> fail (-1) (Printf.sprintf "unknown frame tag %C from parent" tag)
      done

    (* Fault-injection stand-in for [serve]: a worker that completes the
       hello exchange and then answers every parent frame with a junk
       plane body. Either the length check in [connect] (wrong plane
       count) or an unexpected-tag reply trips [Failed] attributed to
       this worker — the garbage-frame case of the fault matrix. *)
    let serve_garbage ~fd =
      send_hello ~fd;
      try
        let running = ref true in
        while !running do
          let tag, _ = read_frame fd in
          if tag = tag_done then running := false
          else write_frame fd tag_planes [] (Some (Bytes.make 3 '\xff'))
        done
      with Failed _ -> ()
  end
end

(* ------------------------------------------------------------------ *)
(* The sharded schedule, transport-agnostic                            *)
(* ------------------------------------------------------------------ *)

(* Drive one run through a transport: per temporal chunk, refresh every
   ghost zone from its owners (one send/recv per piece plus a barrier),
   schedule every shard's advance and barrier again (the transport fans
   the work out — pool lanes in-process, worker processes over pipes),
   then assemble the owned planes into a fresh output grid. The
   exchange cadence — exactly one refresh per chunk at [shards > 1] —
   and the metric accounting live here, shared by every transport. *)
let run_via t ~chunks ~prec ~dims ~plane_words (module T : Transport.S) =
  Obs.Trace.with_span "shard_execute"
    ~attrs:
      [ ("shards", Obs.Trace.Int t.n);
        ("halo", Obs.Trace.Int t.halo_w);
        ("chunks", Obs.Trace.Int (List.length chunks)) ]
  @@ fun () ->
  List.iter
    (fun degree ->
      (* Ghosts are exact copies of the owners' planes at the current
         time level; one refresh buys the whole chunk (degree <= bt,
         staleness reaches at most degree * rad <= halo planes). *)
      if t.n > 1 then begin
        Obs.Metrics.incr m_halo_exchanges;
        Obs.Trace.with_span "halo_exchange" (fun () ->
            let words = ref 0 in
            Array.iteri
              (fun k pieces ->
                Array.iter
                  (fun p ->
                    T.send_halo ~owner:p.owner ~glo:p.glo ~ghi:p.ghi;
                    T.recv_halo ~shard:k ~glo:p.glo ~ghi:p.ghi;
                    words := !words + ((p.ghi - p.glo) * plane_words))
                  pieces)
              t.pulls;
            T.barrier ();
            Obs.Trace.add_attrs [ ("words", Obs.Trace.Int !words) ];
            Obs.Metrics.add m_halo_words !words)
      end;
      Obs.Trace.with_span "chunk" ~attrs:[ ("degree", Obs.Trace.Int degree) ]
        (fun () ->
          for k = 0 to t.n - 1 do
            T.advance ~shard:k ~degree
          done;
          T.barrier ());
      Obs.Metrics.add m_shard_steps (degree * t.n))
    chunks;
  (* Final assembly: owned ranges partition [0, l), so gathering each
     shard's owned planes covers every cell exactly once. *)
  let out = counted_create ~prec dims in
  Array.iteri
    (fun k r -> T.gather ~shard:k ~into:(Stencil.Grid.sub out ~lo:r.lo ~hi:r.hi))
    t.owned_r;
  out

let run ?pool t ~chunks ~grid ~advance =
  if grid.Stencil.Grid.dims.(0) <> t.l then
    invalid_arg "Shard.run: grid does not match the decomposition";
  let prec = grid.Stencil.Grid.prec in
  let plane_words = Stencil.Grid.size grid / t.l in
  let transport = Transport.in_process ?pool t ~grid ~advance in
  run_via t ~chunks ~prec ~dims:grid.Stencil.Grid.dims ~plane_words transport
