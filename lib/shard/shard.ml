(* Halo-exchange domain decomposition and the round/exchange schedule.
   See shard.mli for the contract and docs/SHARDING.md for the cone
   argument that makes the exchange cadence correct. *)

type range = { lo : int; hi : int }

(* One ghost-refresh blit: global planes [glo, ghi) are pulled into a
   shard's buffer from the buffer of [owner], which owns them. *)
type piece = { owner : int; glo : int; ghi : int }

type t = {
  n : int;
  l : int;
  halo_w : int;
  owned_r : range array;  (** disjoint cover of [0, l) *)
  ext_r : range array;  (** owned plus ghost zones, clamped to [0, l) *)
  pulls : piece array array;  (** per shard, split at owner boundaries *)
}

let shards t = t.n

let halo t = t.halo_w

let owned t k =
  let r = t.owned_r.(k) in
  (r.lo, r.hi)

let extent t k =
  let r = t.ext_r.(k) in
  (r.lo, r.hi)

let make ~shards:n ~halo:h ~l =
  if n < 1 then invalid_arg "Shard.make: shards must be >= 1";
  if h < 0 then invalid_arg "Shard.make: negative halo width";
  if n > l then
    invalid_arg
      (Fmt.str "Shard.make: %d shards over %d planes (every shard must own a plane)"
         n l);
  let owned_r =
    Array.init n (fun k -> { lo = k * l / n; hi = (k + 1) * l / n })
  in
  let ext_r =
    Array.init n (fun k ->
        { lo = max 0 (owned_r.(k).lo - h); hi = min l (owned_r.(k).hi + h) })
  in
  (* Owner of a global plane. Setup-time only, so a scan is fine. *)
  let owner_of p =
    let rec go k = if p < owned_r.(k).hi then k else go (k + 1) in
    go 0
  in
  (* A ghost range may span several owners when shards are narrower
     than the halo; split it so every piece blits from one buffer. *)
  let pulls_for k =
    let split (a, b) =
      let rec go acc glo =
        if glo >= b then List.rev acc
        else
          let o = owner_of glo in
          let stop = min b owned_r.(o).hi in
          go ({ owner = o; glo; ghi = stop } :: acc) stop
      in
      go [] a
    in
    Array.of_list
      (List.concat_map split
         [ (ext_r.(k).lo, owned_r.(k).lo); (owned_r.(k).hi, ext_r.(k).hi) ])
  in
  { n; l; halo_w = h; owned_r; ext_r; pulls = Array.init n pulls_for }

(* ------------------------------------------------------------------ *)
(* Observability                                                       *)
(* ------------------------------------------------------------------ *)

let m_halo_exchanges = Obs.Metrics.counter "halo_exchanges"

let m_halo_words = Obs.Metrics.counter "halo_words_exchanged"

let m_shard_steps = Obs.Metrics.counter "shard_steps"

let m_grid_allocs = Obs.Metrics.counter "shard_grid_allocations"

(* Every full grid buffer this module allocates goes through one of
   these — the counter is the no-allocation-on-the-hot-path witness
   (2 * shards + 1 per run, independent of the chunk count). *)
let counted_copy g =
  Obs.Metrics.incr m_grid_allocs;
  Stencil.Grid.copy g

let counted_create ~prec dims =
  Obs.Metrics.incr m_grid_allocs;
  Stencil.Grid.create ~prec dims

(* ------------------------------------------------------------------ *)
(* The sharded schedule                                                *)
(* ------------------------------------------------------------------ *)

(* Zero-copy view of global planes [glo, ghi) inside shard [k]'s
   private buffer. *)
let view t k buf ~glo ~ghi =
  let base = t.ext_r.(k).lo in
  Stencil.Grid.sub buf ~lo:(glo - base) ~hi:(ghi - base)

(* Refresh every ghost zone from its owners' buffers. Sources are
   owned planes and destinations ghost planes, so no piece ever reads
   a region another piece writes — the order is free. *)
let exchange t cur ~plane_words =
  Obs.Metrics.incr m_halo_exchanges;
  Obs.Trace.with_span "halo_exchange" (fun () ->
      let words = ref 0 in
      Array.iteri
        (fun k pieces ->
          Array.iter
            (fun p ->
              Stencil.Grid.blit
                ~src:(view t p.owner cur.(p.owner) ~glo:p.glo ~ghi:p.ghi)
                ~dst:(view t k cur.(k) ~glo:p.glo ~ghi:p.ghi);
              words := !words + ((p.ghi - p.glo) * plane_words))
            pieces)
        t.pulls;
      Obs.Trace.add_attrs [ ("words", Obs.Trace.Int !words) ];
      Obs.Metrics.add m_halo_words !words)

let run ?pool t ~chunks ~grid ~advance =
  if grid.Stencil.Grid.dims.(0) <> t.l then
    invalid_arg "Shard.run: grid does not match the decomposition";
  let prec = grid.Stencil.Grid.prec in
  let plane_words = Stencil.Grid.size grid / t.l in
  Obs.Trace.with_span "shard_execute"
    ~attrs:
      [ ("shards", Obs.Trace.Int t.n);
        ("halo", Obs.Trace.Int t.halo_w);
        ("chunks", Obs.Trace.Int (List.length chunks)) ]
  @@ fun () ->
  (* Per-shard double buffers over the extended (owned + ghost) range,
     both starting as copies of the input — the same double-buffered
     host initialization as the resident path, per shard. *)
  let cur =
    Array.init t.n (fun k ->
        let lo, hi = extent t k in
        counted_copy (Stencil.Grid.sub grid ~lo ~hi))
  in
  let nxt = Array.init t.n (fun k -> counted_copy cur.(k)) in
  List.iter
    (fun degree ->
      (* Ghosts are exact copies of the owners' planes at the current
         time level; one refresh buys the whole chunk (degree <= bt,
         staleness reaches at most degree * rad <= halo planes). *)
      if t.n > 1 then exchange t cur ~plane_words;
      Obs.Trace.with_span "chunk" ~attrs:[ ("degree", Obs.Trace.Int degree) ]
        (fun () ->
          match pool with
          | Some p when Gpu.Pool.size p > 1 ->
              Gpu.Pool.run p ~n:t.n (fun ~lane:_ k ->
                  advance ~shard:k ~degree ~src:cur.(k) ~dst:nxt.(k))
          | _ ->
              for k = 0 to t.n - 1 do
                advance ~shard:k ~degree ~src:cur.(k) ~dst:nxt.(k)
              done);
      Obs.Metrics.add m_shard_steps (degree * t.n);
      for k = 0 to t.n - 1 do
        let tmp = cur.(k) in
        cur.(k) <- nxt.(k);
        nxt.(k) <- tmp
      done)
    chunks;
  (* Final assembly: owned ranges partition [0, l), so blitting each
     shard's owned planes covers every cell exactly once. *)
  let out = counted_create ~prec grid.Stencil.Grid.dims in
  Array.iteri
    (fun k r ->
      Stencil.Grid.blit
        ~src:(view t k cur.(k) ~glo:r.lo ~ghi:r.hi)
        ~dst:(Stencil.Grid.sub out ~lo:r.lo ~hi:r.hi))
    t.owned_r;
  out
