(** The versioned on-disk cache-dump format behind {!Session.dump} /
    {!Session.load} (docs/SERVING.md §persistence).

    A dump file is a four-line header followed by a marshalled payload:

    {v
    AN5D-CACHE            magic
    1                     format version
    <hex>                 key-schema digest (Request.key_schema_digest)
    <hex>                 payload digest
    <payload bytes>
    v}

    Loading refuses — with a reason, never an exception — any file
    whose magic, format version or key-schema digest does not match
    this build (a dump written before a cache-key grammar change must
    not seed a session with stale keys), and any file whose payload
    digest disagrees with its bytes (a single corrupted byte is a clean
    refuse-to-load). Only after all four checks pass is the payload
    unmarshalled, so [Marshal.from_string] never sees attacker- or
    bitrot-controlled bytes.

    Individual cached values are wrapped as digest-checked {!entry}
    records inside the payload, re-verified value-by-value at load
    time. *)

val format_version : int

(** One digest-checked cached value: [bytes] is the marshalled value,
    [digest] its MD5. *)
type entry = { key : string; digest : string; bytes : string }

val entry_of : key:string -> 'a -> entry
(** Marshal a value into a checked entry. The value must be closure-free
    plain data (all serving-layer cache values are). *)

val entry_value : entry -> ('a, string) result
(** Verify the digest and unmarshal. The ['a] is trusted from the
    envelope's schema digest — only call on entries read through
    {!read}. *)

val write : path:string -> schema:string -> 'a -> (unit, string) result
(** Atomically write [value] under the envelope (via a temp file +
    rename, so a crashed dump never leaves a half-written file that a
    later load could read). *)

val read : path:string -> schema:string -> ('a, string) result
(** Read and verify the envelope, then unmarshal the payload. Total:
    missing files, short files, corrupt headers, stale schemas and
    corrupt payloads all return [Error reason]. *)
