(** The socket serving front end: a Unix-domain or TCP listener
    multiplexing many concurrent clients onto one {!Session} over the
    framed {!Wire} protocol (docs/SERVING.md §socket server).

    One thread per client; requests funnel into the session, which
    serializes execution batches, so service is bit-identical to the
    line mode (pinned by the socket differential in
    test/test_wire.ml). Per-client ids come from the [Hello]
    handshake and feed the {!Admission} token bucket — a flooding
    client is shed to the degraded path while quiet clients keep their
    own full buckets.

    Fault containment: a client disconnecting mid-request, stalling
    mid-frame, or sending garbage affects only its own connection.
    Malformed payloads are answered with framed [Error]s; oversized
    frames close that connection; [SIGPIPE] is ignored so vanishing
    peers surface as write errors. The session is never poisoned — the
    fault-injection tests in test/test_wire.ml pin this. *)

type t

val sockaddr_of_string : string -> (Unix.sockaddr, string) result
(** [HOST:PORT] or [:PORT] (TCP; empty host = loopback) — anything
    else is a Unix-domain socket path. *)

val start :
  ?admission:Admission.t ->
  ?backlog:int ->
  session:Session.t ->
  Unix.sockaddr ->
  (t, string) result
(** Bind, listen and start the accept thread. A Unix-domain path that
    already exists as a stale socket is unlinked first. [admission]
    defaults to {!Admission.unlimited}. *)

val addr : t -> Unix.sockaddr
(** The bound address (useful with TCP port 0: the kernel-assigned
    port). *)

val stop : t -> unit
(** Close the listener and all client connections, then join every
    thread. Idempotent. The shared session is left running — shutting
    it down is the caller's business. *)
