(* Keyed LRU+TTL cache with in-flight coalescing. See cache.mli. *)

type 'v entry =
  | Ready of { value : 'v; expires : float; mutable last_use : int }
  | In_flight

type served = Hit | Miss | Coalesced

type stats = {
  hits : int;
  misses : int;
  coalesced : int;
  evictions : int;
  expired : int;
  size : int;
}

type 'v t = {
  capacity : int;
  ttl : float option;
  clock : unit -> float;
  tbl : (string, 'v entry) Hashtbl.t;
  lock : Mutex.t;
  cond : Condition.t;
  mutable tick : int;  (** LRU clock: bumped on every touch *)
  mutable hits : int;
  mutable misses : int;
  mutable coalesced : int;
  mutable evictions : int;
  mutable expired : int;
  c_hits : Obs.Metrics.counter;
  c_misses : Obs.Metrics.counter;
  c_coalesced : Obs.Metrics.counter;
  c_evictions : Obs.Metrics.counter;
  c_expired : Obs.Metrics.counter;
}

let create ?ttl ?(clock = Unix.gettimeofday) ?(capacity = 64) ~name () =
  if capacity < 1 then invalid_arg "Cache.create: capacity must be positive";
  let m sub = Obs.Metrics.counter (Fmt.str "serve_%s_cache_%s" name sub) in
  {
    capacity;
    ttl;
    clock;
    tbl = Hashtbl.create 64;
    lock = Mutex.create ();
    cond = Condition.create ();
    tick = 0;
    hits = 0;
    misses = 0;
    coalesced = 0;
    evictions = 0;
    expired = 0;
    c_hits = m "hits";
    c_misses = m "misses";
    c_coalesced = m "coalesced";
    c_evictions = m "evictions";
    c_expired = m "expired";
  }

let touch t = t.tick <- t.tick + 1; t.tick

let ready_size t =
  Hashtbl.fold (fun _ e n -> match e with Ready _ -> n + 1 | In_flight -> n) t.tbl 0

(* Evict least-recently-used ready entries until within capacity.
   Called under the lock. *)
let enforce_capacity t =
  while ready_size t > t.capacity do
    let victim =
      Hashtbl.fold
        (fun k e acc ->
          match (e, acc) with
          | In_flight, _ -> acc
          | Ready { last_use; _ }, Some (_, best) when best <= last_use -> acc
          | Ready { last_use; _ }, _ -> Some (k, last_use))
        t.tbl None
    in
    match victim with
    | Some (k, _) ->
        Hashtbl.remove t.tbl k;
        t.evictions <- t.evictions + 1;
        Obs.Metrics.incr t.c_evictions
    | None -> assert false (* ready_size > capacity >= 1 implies a victim *)
  done

let expired_entry t expires = match t.ttl with None -> false | Some _ -> t.clock () >= expires

(* Insert the computed value and wake waiters. Under the lock. *)
let insert t key value =
  let expires =
    match t.ttl with None -> infinity | Some ttl -> t.clock () +. ttl
  in
  Hashtbl.replace t.tbl key (Ready { value; expires; last_use = touch t });
  enforce_capacity t;
  Condition.broadcast t.cond

let find_or_compute t ~key f =
  Mutex.lock t.lock;
  let rec attempt ~waited =
    match Hashtbl.find_opt t.tbl key with
    | Some (Ready e) when not (expired_entry t e.expires) ->
        e.last_use <- touch t;
        if waited then begin
          t.coalesced <- t.coalesced + 1;
          Obs.Metrics.incr t.c_coalesced
        end
        else begin
          t.hits <- t.hits + 1;
          Obs.Metrics.incr t.c_hits
        end;
        Mutex.unlock t.lock;
        (e.value, if waited then Coalesced else Hit)
    | Some (Ready _) ->
        Hashtbl.remove t.tbl key;
        t.expired <- t.expired + 1;
        Obs.Metrics.incr t.c_expired;
        compute ()
    | Some In_flight ->
        Condition.wait t.cond t.lock;
        attempt ~waited:true
    | None -> compute ()
  and compute () =
    Hashtbl.replace t.tbl key In_flight;
    t.misses <- t.misses + 1;
    Obs.Metrics.incr t.c_misses;
    Mutex.unlock t.lock;
    match f () with
    | value ->
        Mutex.lock t.lock;
        insert t key value;
        Mutex.unlock t.lock;
        (value, Miss)
    | exception e ->
        (* un-poison the key and wake waiters so one of them retries *)
        Mutex.lock t.lock;
        Hashtbl.remove t.tbl key;
        Condition.broadcast t.cond;
        Mutex.unlock t.lock;
        raise e
  in
  attempt ~waited:false

let find t ~key =
  Mutex.lock t.lock;
  let r =
    match Hashtbl.find_opt t.tbl key with
    | Some (Ready e) when not (expired_entry t e.expires) ->
        e.last_use <- touch t;
        t.hits <- t.hits + 1;
        Obs.Metrics.incr t.c_hits;
        Some e.value
    | Some (Ready _) ->
        Hashtbl.remove t.tbl key;
        t.expired <- t.expired + 1;
        Obs.Metrics.incr t.c_expired;
        t.misses <- t.misses + 1;
        Obs.Metrics.incr t.c_misses;
        None
    | Some In_flight | None ->
        t.misses <- t.misses + 1;
        Obs.Metrics.incr t.c_misses;
        None
  in
  Mutex.unlock t.lock;
  r

let stats t =
  Mutex.lock t.lock;
  let s =
    {
      hits = t.hits;
      misses = t.misses;
      coalesced = t.coalesced;
      evictions = t.evictions;
      expired = t.expired;
      size = ready_size t;
    }
  in
  Mutex.unlock t.lock;
  s

let export t =
  Mutex.lock t.lock;
  let entries =
    Hashtbl.fold
      (fun k e acc ->
        match e with
        | Ready { value; last_use; expires } when not (expired_entry t expires) ->
            (last_use, k, value) :: acc
        | Ready _ | In_flight -> acc)
      t.tbl []
  in
  Mutex.unlock t.lock;
  (* least-recently-used first, so [import] replays the LRU order *)
  List.sort (fun (a, _, _) (b, _, _) -> compare a b) entries
  |> List.map (fun (_, k, v) -> (k, v))

let import t entries =
  Mutex.lock t.lock;
  List.iter (fun (key, value) -> insert t key value) entries;
  Mutex.unlock t.lock

let clear t =
  Mutex.lock t.lock;
  let ready_keys =
    Hashtbl.fold
      (fun k e acc -> match e with Ready _ -> k :: acc | In_flight -> acc)
      t.tbl []
  in
  List.iter (Hashtbl.remove t.tbl) ready_keys;
  Mutex.unlock t.lock
