(** A persistent batch-serving session: accepts compile / simulate /
    tune requests and serves them through keyed caches with in-flight
    coalescing, scheduled over a reusable {!Gpu.Pool} of worker
    domains, with per-request deadlines, cancellation and graceful
    degradation (see docs/SERVING.md).

    Three caches back the session:
    - {b jobs}: compiled {!Framework.job}s keyed by (source digest,
      config, dims, precision) — {!Request.spec_key};
    - {b tunes}: [Tuner.result]s keyed additionally by device, dims,
      steps and [k];
    - {b outcomes}: full simulate outcomes keyed by the job key plus
      device, steps, input seed and the semantic
      {!An5d_core.Run_config.cache_key} (the simulator is
      deterministic, so a repeated request is served the identical
      bits — asserted by the QCheck differential in
      test/test_serve.ml).

    Overload and lateness degrade rather than fail: a request past the
    {!config.queue_capacity} bound or whose deadline expired while it
    queued is served by a direct low-degree [bt = 1] run and reported
    as [Degraded], never dropped. *)

open An5d_core

type config = {
  domains : int;  (** pool lanes executing batch requests (1 = inline) *)
  queue_capacity : int;
      (** accepted backlog per batch; requests beyond it are shed to
          the degraded path *)
  default_deadline : float option;
      (** seconds from submission to execution start, when the request
          carries none; [None] = no deadline *)
  job_capacity : int;
  job_ttl : float option;
  tune_capacity : int;
  tune_ttl : float option;
  outcome_capacity : int;
  outcome_ttl : float option;
  clock : unit -> float;  (** injectable for deadline/TTL tests *)
  workers : Workers.t option;
      (** worker-process registry for sharded simulate requests: a
          request with [run.workers > 1] and [run.shards > 1] executes
          across these processes ({!Workers.simulate}) instead of
          in-process; results are bit-identical either way. [None] =
          everything in-process. The registry's failure handling
          (respawn + in-process retry) means routing never drops a
          request. *)
}

val default_config : config
(** 1 domain, queue capacity 64, no default deadline, 64-entry caches,
    no TTLs, [Unix.gettimeofday], no worker registry. *)

(** How a response was produced: [Cold] — computed by this request;
    [Warm] — served from a cache; [Coalesced] — computed once by a
    concurrent identical request this one waited for. *)
type served = Cold | Warm | Coalesced

type shed = Overload | Deadline_exceeded

type payload =
  | Compiled of { job : Framework.job; cuda : string }
  | Simulated of { outcome : Framework.outcome; config : Config.t }
      (** [config] is the kernel configuration actually run — the
          requested one, or the [bt = 1] fallback when degraded *)
  | Tuned of Model.Tuner.result

type status =
  | Done of payload
  | Degraded of payload * shed
      (** served by the [bt = 1] fallback (verification skipped), with
          the reason it was shed *)
  | Cancelled
  | Failed of string
      (** front-door rejection or execution failure; the session never
          dies on a bad request *)

type response = {
  id : string option;
  status : status;
  served : served;
  latency : float;  (** seconds from batch submission to completion *)
}

type t

val create : ?config:config -> unit -> t

val submit : t -> Request.t -> response

val submit_shed : t -> Request.t -> response
(** Serve a request that an upstream admission controller (the
    {!Server}'s per-client token bucket) decided to shed: it goes
    straight to the degraded [bt = 1] path and comes back
    [Degraded (_, Overload)] — shed traffic is still served, never
    dropped, and bypasses the caches so it cannot evict tuned-for
    entries. *)

val submit_batch : t -> Request.t list -> response list
(** Serve a batch: requests fan out over the session pool (responses
    come back in request order), identical concurrent requests
    coalesce into one computation, requests beyond
    [config.queue_capacity] or past their deadline degrade. One batch
    runs at a time; concurrent calls serialize. *)

val cancel : t -> string -> unit
(** Mark a request id cancelled: any not-yet-started request carrying
    it (in this or a later batch) gets a [Cancelled] response. Sticky
    for the session's lifetime. *)

val dump : t -> path:string -> (int, string) result
(** Persist the three caches and the transfer-winner registry to
    [path] in the digest-checked {!Persist} envelope (atomic
    temp-file-and-rename write). Returns the number of cache entries
    written. Timed by the [cache_persist_dump_us] histogram. *)

val load : t -> path:string -> (int, string) result
(** Seed the session's caches from a dump written by {!dump}: entries
    import warm (fresh TTL, LRU order preserved, no hit/miss skew) and
    the winner registry merges in. Refuses — with a reason, never an
    exception — dumps with a different format version or cache-key
    schema digest, and dumps or entries whose payload digest fails
    (one corrupted byte is a clean [Error], the session is left
    untouched). Returns the number of entries imported. Timed by
    [cache_persist_load_us]. *)

type stats = {
  total : int;
  degraded : int;
  cancelled : int;
  failed : int;
  winners : int;  (** transfer-winner registry size *)
  jobs : Cache.stats;
  tunes : Cache.stats;
  outcomes : Cache.stats;
}

val stats : t -> stats

val pp_stats : Format.formatter -> stats -> unit
(** Uniform rendering, one line per cache:
    [NAME cache: H hit, M miss, C coalesced, E evicted, X expired,
    L live, R% hit-ratio] — the format the [an5d serve] [stats] verb
    prints and test/test_serve.ml pins. The ratio is hits over all
    lookups (hits + misses + coalesced). *)

val shutdown : t -> unit
(** Join the pool domains. The session must not be used afterwards. *)
