(* Long-lived shard worker processes behind the serving layer. See
   workers.mli and docs/SHARDING.md §phase 2. *)

open An5d_core

let src_log = Logs.Src.create "an5d.workers" ~doc:"AN5D shard worker registry"

module Log = (val Logs.src_log src_log : Logs.LOG)

(* Observability (docs/OBSERVABILITY.md): every spawn attempt, every
   attributed crash, every request that fell back to the in-process
   path. The fault matrix in test/test_workers.ml asserts these
   exactly. *)
let m_spawns = Obs.Metrics.counter "worker_spawns"

let m_crashes = Obs.Metrics.counter "worker_crashes"

let m_retries = Obs.Metrics.counter "worker_retries"

(* Same interned counter Blocking's sharded path bumps, so the
   chunks-executed cadence is transport-invariant. *)
let m_chunks_executed = Obs.Metrics.counter "chunks_executed"

let g_verify_deviation = Obs.Metrics.gauge "simulate_max_abs_deviation"

type chaos = No_hello | Die_at_advance of int | Garbage_planes

type spawn =
  | Fork
  | Exec of string array
  | Custom of (Unix.file_descr -> unit)

type worker = {
  mutable pid : int;
  mutable fd : Unix.file_descr;
  mutable alive : bool;
}

type t = {
  n : int;
  spawn : spawn;
  chaos : chaos option;
  timeout : float;
  hello_timeout : float;
  workers : worker array;
}

let size t = t.n

let pid t i = t.workers.(i).pid

let alive t i = t.workers.(i).alive

(* ------------------------------------------------------------------ *)
(* Counters over the wire                                              *)
(* ------------------------------------------------------------------ *)

(* The counter merge crosses the process boundary as a JSON object in
   the worker's completion frame. Integer sums commute, so parent-side
   accumulation over workers equals the in-process per-shard merge. *)
let counters_to_json (c : Gpu.Counters.t) =
  Json.Obj
    [
      ("gm_reads", Json.Int c.Gpu.Counters.gm_reads);
      ("gm_writes", Json.Int c.Gpu.Counters.gm_writes);
      ("sm_reads", Json.Int c.Gpu.Counters.sm_reads);
      ("sm_writes", Json.Int c.Gpu.Counters.sm_writes);
      ("fma", Json.Int c.Gpu.Counters.fma);
      ("mul", Json.Int c.Gpu.Counters.mul);
      ("add", Json.Int c.Gpu.Counters.add);
      ("other", Json.Int c.Gpu.Counters.other);
      ("kernel_launches", Json.Int c.Gpu.Counters.kernel_launches);
      ("barriers", Json.Int c.Gpu.Counters.barriers);
      ("cells_updated", Json.Int c.Gpu.Counters.cells_updated);
    ]

let counters_of_json j =
  let f name = Option.value (Json.int_field j name) ~default:0 in
  let c = Gpu.Counters.create () in
  c.Gpu.Counters.gm_reads <- f "gm_reads";
  c.Gpu.Counters.gm_writes <- f "gm_writes";
  c.Gpu.Counters.sm_reads <- f "sm_reads";
  c.Gpu.Counters.sm_writes <- f "sm_writes";
  c.Gpu.Counters.fma <- f "fma";
  c.Gpu.Counters.mul <- f "mul";
  c.Gpu.Counters.add <- f "add";
  c.Gpu.Counters.other <- f "other";
  c.Gpu.Counters.kernel_launches <- f "kernel_launches";
  c.Gpu.Counters.barriers <- f "barriers";
  c.Gpu.Counters.cells_updated <- f "cells_updated";
  c

(* ------------------------------------------------------------------ *)
(* Task descriptors                                                    *)
(* ------------------------------------------------------------------ *)

(* One sharded run, as shipped to a worker in a [Stats] frame: the full
   request spec (the worker re-compiles from source — no closures cross
   the boundary), the execution knobs, and which shards of the
   decomposition this worker holds. The decomposition geometry itself
   is recomputed on both sides from the same (shards, bt*rad, l)
   inputs, so it cannot drift. *)
let task_json ~(spec : Request.spec) ~device ~steps ~seed ~run ~owned =
  Json.Obj
    [
      ("spec", Request.spec_to_json spec);
      ("device", Json.Str device.Gpu.Device.name);
      ("steps", Json.Int steps);
      ("seed", Json.Int seed);
      ("run", Request.run_to_json run);
      ("owned", Json.Arr (List.map (fun k -> Json.Int k) owned));
    ]

let ( let* ) = Result.bind

let task_of_json j =
  let* spec =
    match Json.field j "spec" with
    | Some s -> Request.spec_of_json s
    | None -> Error "task missing spec"
  in
  let* device =
    match Json.str_field j "device" with
    | Some d -> (
        match Gpu.Device.find d with
        | Some dev -> Ok dev
        | None -> Error (Fmt.str "unknown device %s" d))
    | None -> Error "task missing device"
  in
  let* run =
    match Json.field j "run" with
    | Some r -> Request.run_of_json r
    | None -> Error "task missing run"
  in
  match
    (Json.int_field j "steps", Json.int_field j "seed",
     Json.int_list_field j "owned")
  with
  | Some steps, Some seed, Some owned -> Ok (spec, device, steps, seed, run, owned)
  | _ -> Error "task missing steps/seed/owned"

(* ------------------------------------------------------------------ *)
(* Worker side                                                         *)
(* ------------------------------------------------------------------ *)

(* Execute one task: compile the spec, build the per-shard execution
   models and machines exactly as [Blocking.run_sharded] does, then
   hand the descriptor loop to [Shard.Transport.Pipe.serve] with the
   same [kernel_call] closure the in-process path injects — the
   bit-identity argument is that nothing but the plane transport
   differs. Returns the merged counters of this worker's shards. *)
let run_task ?chaos fd body =
  let* spec, device, _steps, seed, run, owned = task_of_json body in
  (* [steps] rides along for log/debug symmetry; the temporal schedule
     itself is driven frame-by-frame by the parent. *)
  let* job =
    try
      Ok
        (Framework.compile ?dims:spec.Request.dims ?prec:spec.Request.prec
           ~config:spec.Request.config spec.Request.source)
    with Framework.Compile_error msg -> Error msg
  in
  let em = Framework.execmodel job in
  let rad = em.Execmodel.pattern.Stencil.Pattern.radius in
  let bt = em.Execmodel.config.Config.bt in
  let shards = run.Run_config.shards in
  let decomp = Shard.make ~shards ~halo:(bt * rad) ~l:em.Execmodel.dims.(0) in
  let ems =
    Array.init shards (fun k ->
        let lo, hi = Shard.extent decomp k in
        let sdims = Array.copy em.Execmodel.dims in
        sdims.(0) <- hi - lo;
        Execmodel.make em.Execmodel.pattern em.Execmodel.config sdims)
  in
  let machines =
    Array.init shards (fun _ ->
        Gpu.Machine.create ~prec:job.Framework.prec device)
  in
  let mode = run.Run_config.mode and impl = run.Run_config.impl in
  let advances = ref 0 in
  let advance ~shard ~degree ~src ~dst =
    (match chaos with
    | Some (Die_at_advance n) ->
        incr advances;
        if !advances >= n then Unix._exit 9
    | _ -> ());
    Blocking.kernel_call ~mode ~impl ems.(shard) ~machine:machines.(shard)
      ~degree ~src ~dst
  in
  let grid =
    Stencil.Grid.init_random ~prec:job.Framework.prec ~seed job.Framework.dims
  in
  (match chaos with
  | Some Garbage_planes -> Shard.Transport.Pipe.serve_garbage ~fd
  | _ -> Shard.Transport.Pipe.serve ~fd decomp ~owned ~grid ~advance);
  Ok
    (Gpu.Counters.merge
       (List.map (fun k -> machines.(k).Gpu.Machine.counters) owned))

(* The worker process entrypoint ([an5d worker], or the forked child).
   Protocol phases on the one descriptor, strictly ordered: a Wire
   [Hello] at startup, then per task a Wire [Stats] frame in, the
   binary shard-transport exchange (whose own hello [Pipe.serve]
   sends), and a Wire [Response] carrying the merged counters out.
   [chaos] injects the fault matrix: skip the hello, die at the Nth
   kernel call, or answer halo pulls with junk. *)
let worker_main ?chaos fd =
  (match chaos with
  | Some No_hello ->
      (* Hold the descriptor without speaking: the parent's handshake
         timeout, not a closed-pipe error, must be what fires. *)
      (try ignore (Unix.select [] [] [] 3600.0) with _ -> ());
      Unix._exit 0
  | _ -> ());
  ignore
    (Wire.write_frame fd
       (Wire.Hello
          {
            version = Wire.version;
            client = Printf.sprintf "worker:%d" (Unix.getpid ());
          }));
  let running = ref true in
  while !running do
    match Wire.read_frame fd with
    | Ok (Wire.Stats { body }) -> (
        match run_task ?chaos fd body with
        | Ok counters ->
            ignore
              (Wire.write_frame fd
                 (Wire.Response
                    {
                      id = None;
                      status = "done";
                      served = "cold";
                      latency = 0.0;
                      payload = counters_to_json counters;
                    }))
        | Error msg ->
            ignore (Wire.write_frame fd (Wire.Error { id = None; message = msg }))
        | exception Shard.Transport.Failed { reason; _ } ->
            ignore
              (Wire.write_frame fd (Wire.Error { id = None; message = reason })))
    | Ok Wire.Hello _ -> ()
    | Ok _ ->
        ignore
          (Wire.write_frame fd
             (Wire.Error { id = None; message = "unexpected frame" }))
    | Error (Wire.Closed | Wire.Truncated) -> running := false
    | Error _ -> running := false
  done

(* ------------------------------------------------------------------ *)
(* Registry: spawn, handshake, health                                  *)
(* ------------------------------------------------------------------ *)

let wait_readable fd timeout =
  match Unix.select [ fd ] [] [] timeout with
  | [ _ ], _, _ -> true
  | _ -> false
  | exception Unix.Unix_error (Unix.EINTR, _, _) -> false

let reap pid =
  if pid > 0 then try ignore (Unix.waitpid [] pid) with Unix.Unix_error _ -> ()

let close_quiet fd = try Unix.close fd with Unix.Unix_error _ -> ()

(* Spawn one worker process on a fresh socketpair and complete the Wire
   hello handshake under [hello_timeout]. A worker that never says
   hello (or says it wrong) is killed, reaped and counted as a crash —
   the handshake-timeout row of the fault matrix. *)
let try_spawn t i =
  Obs.Metrics.incr m_spawns;
  (* Close-on-exec on both ends: an exec'd worker keeps only its own
     pair (dup2 onto stdin/stdout clears the flag on the copies), never
     a sibling's. A worker holding a sibling's parent end would keep
     that sibling's pipe open after we close it — shutdown's EOF would
     never arrive. Forked children get the same hygiene explicitly. *)
  let parent_fd, child_fd =
    Unix.socketpair ~cloexec:true Unix.PF_UNIX Unix.SOCK_STREAM 0
  in
  let fork_child f =
    match Unix.fork () with
    | 0 ->
        close_quiet parent_fd;
        Array.iter (fun w -> if w.alive then close_quiet w.fd) t.workers;
        (try f child_fd with _ -> ());
        Unix._exit 0
    | pid -> pid
  in
  let pid =
    match t.spawn with
    | Fork -> fork_child (worker_main ?chaos:t.chaos)
    | Custom f -> fork_child f
    | Exec argv ->
        Unix.create_process argv.(0) argv child_fd child_fd Unix.stderr
  in
  close_quiet child_fd;
  let w = t.workers.(i) in
  let fail reason =
    Log.warn (fun m -> m "worker %d (pid %d) failed handshake: %s" i pid reason);
    Obs.Metrics.incr m_crashes;
    (try Unix.kill pid Sys.sigkill with Unix.Unix_error _ -> ());
    reap pid;
    close_quiet parent_fd;
    w.pid <- -1;
    w.alive <- false
  in
  if not (wait_readable parent_fd t.hello_timeout) then fail "handshake timeout"
  else
    match Wire.read_frame parent_fd with
    | Ok (Wire.Hello { version; _ }) when version = Wire.version ->
        Unix.setsockopt_float parent_fd Unix.SO_RCVTIMEO t.timeout;
        w.pid <- pid;
        w.fd <- parent_fd;
        w.alive <- true;
        Log.info (fun m -> m "worker %d up (pid %d)" i pid)
    | Ok (Wire.Hello { version; _ }) ->
        fail (Fmt.str "version mismatch: worker %d, parent %d" version Wire.version)
    | Ok _ -> fail "expected hello"
    | Error e -> fail (Wire.read_error_to_string e)

let create ?(spawn = Fork) ?chaos ?(timeout = 30.0) ?(hello_timeout = 5.0) n =
  if n < 1 then invalid_arg "Workers.create: need at least one worker";
  let t =
    {
      n;
      spawn;
      chaos;
      timeout;
      hello_timeout;
      workers =
        Array.init n (fun _ -> { pid = -1; fd = Unix.stdin; alive = false });
    }
  in
  for i = 0 to n - 1 do
    try_spawn t i
  done;
  t

(* Health check + respawn: a worker whose process exited since we last
   looked (SIGKILL between requests, a crash we already attributed) is
   reaped and marked dead; every dead slot gets one respawn attempt.
   Crashes detected *here* are the silent deaths — failures during a
   run are attributed and counted at the failure site, and those
   workers are already marked dead, so nothing double-counts. *)
let ensure_alive t =
  Array.iteri
    (fun i w ->
      if w.alive && w.pid > 0 then
        match Unix.waitpid [ Unix.WNOHANG ] w.pid with
        | 0, _ -> ()
        | _ ->
            Log.warn (fun m -> m "worker %d (pid %d) died" i w.pid);
            Obs.Metrics.incr m_crashes;
            close_quiet w.fd;
            w.pid <- -1;
            w.alive <- false
        | exception Unix.Unix_error _ ->
            Obs.Metrics.incr m_crashes;
            close_quiet w.fd;
            w.pid <- -1;
            w.alive <- false)
    t.workers;
  Array.iteri (fun i w -> if not w.alive then try_spawn t i) t.workers;
  Array.for_all (fun w -> w.alive) t.workers

(* Tear down every worker a failed run touched: kill, reap, close. The
   one worker the failure was attributed to has already been counted;
   the others die uncounted (they were healthy — the run just cannot
   continue without the transport). Then respawn eagerly so the next
   request finds a full registry. *)
let reset_used t nw =
  for i = 0 to nw - 1 do
    let w = t.workers.(i) in
    if w.alive then begin
      (try Unix.kill w.pid Sys.sigkill with Unix.Unix_error _ -> ());
      reap w.pid;
      close_quiet w.fd;
      w.pid <- -1;
      w.alive <- false
    end
  done;
  for i = 0 to nw - 1 do
    try_spawn t i
  done

let shutdown t =
  Array.iteri
    (fun i w ->
      if w.alive then begin
        close_quiet w.fd;
        (match Unix.waitpid [] w.pid with
        | _ -> ()
        | exception Unix.Unix_error _ -> ());
        Log.info (fun m -> m "worker %d (pid %d) shut down" i w.pid);
        w.pid <- -1;
        w.alive <- false
      end)
    t.workers

let kill t i =
  let w = t.workers.(i) in
  if w.alive then (try Unix.kill w.pid Sys.sigkill with Unix.Unix_error _ -> ())

(* ------------------------------------------------------------------ *)
(* The distributed simulate                                            *)
(* ------------------------------------------------------------------ *)

(* Read one worker's Wire completion frame after the binary phase. *)
let read_completion t w =
  let fd = t.workers.(w).fd in
  if not (wait_readable fd t.timeout) then
    raise (Shard.Transport.Failed { worker = w; reason = "completion timeout" });
  match Wire.read_frame fd with
  | Ok (Wire.Response { payload; _ }) -> counters_of_json payload
  | Ok (Wire.Error { message; _ }) ->
      raise (Shard.Transport.Failed { worker = w; reason = message })
  | Ok _ ->
      raise
        (Shard.Transport.Failed { worker = w; reason = "unexpected completion" })
  | Error e ->
      raise
        (Shard.Transport.Failed
           { worker = w; reason = Wire.read_error_to_string e })

let simulate t ~(spec : Request.spec) ~(job : Framework.job) ~device ~steps
    ~seed ~(run : Run_config.t) =
  let shards = run.Run_config.shards in
  if shards < 2 then
    invalid_arg "Workers.simulate: needs a sharded run (shards >= 2)";
  let nw = min t.n shards in
  (* In-process retry: the never-drop guarantee. Bit-identical to the
     multi-process path by the shard differential, so a client cannot
     tell a retried request from a first-try one except by latency. *)
  let fallback () =
    Obs.Metrics.incr m_retries;
    let grid =
      Stencil.Grid.init_random ~prec:job.Framework.prec ~seed job.Framework.dims
    in
    Framework.simulate_cfg ~cfg:run ~device ~steps job grid
  in
  let attribute w reason =
    Log.warn (fun m -> m "worker %d failed: %s" w reason);
    Obs.Metrics.incr m_crashes;
    (* Mark the culprit dead before the reset so [reset_used] does not
       kill-and-respawn bookkeeping it twice. *)
    if w >= 0 && w < t.n then begin
      let cw = t.workers.(w) in
      if cw.alive then begin
        (try Unix.kill cw.pid Sys.sigkill with Unix.Unix_error _ -> ());
        reap cw.pid;
        close_quiet cw.fd;
        cw.pid <- -1;
        cw.alive <- false
      end
    end
  in
  if not (ensure_alive t) then fallback ()
  else
    try
      Obs.Trace.with_span "simulate"
        ~attrs:
          [
            ("device", Obs.Trace.Str device.Gpu.Device.name);
            ("steps", Obs.Trace.Int steps);
            ("shards", Obs.Trace.Int shards);
            ("workers", Obs.Trace.Int nw);
          ]
      @@ fun () ->
      let em = Framework.execmodel job in
      let rad = em.Execmodel.pattern.Stencil.Pattern.radius in
      let bt = em.Execmodel.config.Config.bt in
      let decomp =
        Shard.make ~shards ~halo:(bt * rad) ~l:em.Execmodel.dims.(0)
      in
      let chunks = Execmodel.time_chunks ~bt ~it:steps in
      (* Contiguous shard blocks per worker: worker w holds shards
         [w*shards/nw, (w+1)*shards/nw) — the same remainder spreading
         as the decomposition itself, so neighbors mostly share a
         worker and most ghost pieces are worker-local Copy frames. *)
      let worker_of = Array.init shards (fun k -> k * nw / shards) in
      let owned_by w =
        List.filter (fun k -> worker_of.(k) = w)
          (List.init shards (fun k -> k))
      in
      let fds = Array.init nw (fun w -> t.workers.(w).fd) in
      (* Ship the task, then complete the binary-phase hello. *)
      for w = 0 to nw - 1 do
        let task =
          task_json ~spec ~device ~steps ~seed ~run ~owned:(owned_by w)
        in
        match Wire.write_frame fds.(w) (Wire.Stats { body = task }) with
        | Ok () -> ()
        | Error e -> raise (Shard.Transport.Failed { worker = w; reason = e })
      done;
      for w = 0 to nw - 1 do
        if not (wait_readable fds.(w) t.timeout) then
          raise
            (Shard.Transport.Failed
               { worker = w; reason = "transport hello timeout" });
        ignore (Shard.Transport.Pipe.read_hello ~worker:w fds.(w))
      done;
      let plane_words =
        Array.fold_left ( * ) 1
          (Array.sub job.Framework.dims 1 (Array.length job.Framework.dims - 1))
      in
      let plane_bytes =
        plane_words * Stencil.Grid.bytes_per_word job.Framework.prec
      in
      let transport =
        Shard.Transport.Pipe.connect ~plane_bytes decomp ~fds ~worker_of
      in
      let result =
        Shard.run_via decomp ~chunks ~prec:job.Framework.prec
          ~dims:job.Framework.dims ~plane_words transport
      in
      let (module T) = transport in
      T.close ();
      let counters = Gpu.Counters.create () in
      for w = 0 to nw - 1 do
        Gpu.Counters.add_into (read_completion t w) ~into:counters
      done;
      Obs.Metrics.add m_chunks_executed (List.length chunks);
      (* Launch statistics are analytic — the same formulas
         [Blocking.run_sharded] reports, over the same per-shard
         models. *)
      let ems =
        Array.init shards (fun k ->
            let lo, hi = Shard.extent decomp k in
            let sdims = Array.copy em.Execmodel.dims in
            sdims.(0) <- hi - lo;
            Execmodel.make em.Execmodel.pattern em.Execmodel.config sdims)
      in
      let prec = job.Framework.prec in
      let stats =
        {
          Blocking.n_tb = Execmodel.n_tb em;
          n_stream_blocks =
            Array.fold_left
              (fun acc sem -> acc + Execmodel.n_stream_blocks sem)
              0 ems;
          n_thr = Config.n_thr em.Execmodel.config;
          smem_bytes = Execmodel.smem_bytes em ~prec;
          regs_per_thread = Registers.an5d_required ~prec ~bt ~rad;
          kernel_calls = List.length chunks * shards;
        }
      in
      let verified =
        if not run.Run_config.verify then Ok ()
        else
          Obs.Trace.with_span "verify" (fun () ->
              let grid =
                Stencil.Grid.init_random ~prec ~seed job.Framework.dims
              in
              let reference =
                Stencil.Reference.run (Framework.pattern job) ~steps grid
              in
              let d = Stencil.Grid.max_abs_diff reference result in
              Obs.Metrics.set_gauge g_verify_deviation d;
              Obs.Trace.add_attrs [ ("max_abs_deviation", Obs.Trace.Float d) ];
              if d = 0.0 then Ok () else Error d)
      in
      { Framework.result; stats; counters; verified }
    with Shard.Transport.Failed { worker; reason } ->
      attribute worker reason;
      reset_used t nw;
      fallback ()
