(** The serving layer's single JSON codec.

    One total codec shared by every producer and consumer of JSON in
    the serve layer — the {!Wire} protocol frames, the worker task
    descriptors of {!Workers}, and the request/response payload bodies
    built by {!Server} — so the encodings cannot drift apart. The repo
    deliberately has no JSON dependency; this module is the one
    hand-rolled implementation (historically it lived inside {!Wire};
    [Wire.json] re-exports {!t} so existing constructors keep working).

    The parser is total: any byte string — truncated, non-JSON, too
    deeply nested — yields [Error], never an exception (adversarial
    fuzz in test/test_wire.ml pins this). *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

val to_string : t -> string
(** Compact rendering with full string escaping. Non-finite floats
    render as [null] (JSON has no spelling for them). *)

val of_string : string -> (t, string) result
(** Total recursive-descent parser: bounded nesting depth
    ({!max_depth}), no exceptions escape. *)

val max_depth : int
(** Nesting bound of {!of_string} (64). *)

(** {1 Accessors}

    Shape-tolerant field projections over an [Obj] — every accessor
    answers [None] on a missing field, a wrong-typed field, or a
    non-object value, so decoders read as straight-line option code. *)

val field : t -> string -> t option

val str_field : t -> string -> string option

val int_field : t -> string -> int option

val num_field : t -> string -> float option
(** [Int] and [Float] both project ([Int] widened). *)

val bool_field : t -> string -> bool option

val int_list_field : t -> string -> int list option
(** An [Arr] of [Int]s, all-or-nothing. *)

val of_int_array : int array -> t
