(** Serving-layer requests: what a client may ask an [An5d_serve]
    session for, with stable cache keys and a line-oriented concrete
    syntax for the [an5d batch]/[an5d serve] CLI modes.

    A request names its stencil either as a built-in Table 3 benchmark
    ({!Bench_defs.Benchmarks}) or as a path to a C source file; both
    resolve to a {!Framework.source}, so every request goes through the
    real compile front door and its cache key can hash the actual
    source text. *)

open An5d_core

(** What to compile: source, kernel configuration and the optional
    grid-size / precision overrides — exactly the inputs of
    {!Framework.compile}. *)
type spec = {
  source : Framework.source;
  config : Config.t;
  dims : int array option;
  prec : Stencil.Grid.precision option;
}

type body =
  | Compile of spec
  | Simulate of {
      spec : spec;
      device : Gpu.Device.t;
      steps : int;
      seed : int;  (** seed of the deterministic random input grid *)
      run : Run_config.t;
    }
  | Tune of {
      pattern : Stencil.Pattern.t;
      source_digest : string;  (** digest of the originating C text *)
      device : Gpu.Device.t;
      prec : Stencil.Grid.precision;
      dims : int array;
      steps : int;
      k : int;
    }

type t = {
  id : string option;  (** client handle, used for cancellation *)
  deadline : float option;
      (** seconds after submission by which execution must have
          started; exceeded => degraded [bt = 1] service *)
  body : body;
}

val simulate :
  ?id:string ->
  ?deadline:float ->
  ?dims:int array ->
  ?prec:Stencil.Grid.precision ->
  ?seed:int ->
  ?run:Run_config.t ->
  config:Config.t ->
  device:Gpu.Device.t ->
  steps:int ->
  Framework.source ->
  t
(** Programmatic constructors (the CLI goes through {!of_line}). *)

val compile :
  ?id:string ->
  ?deadline:float ->
  ?dims:int array ->
  ?prec:Stencil.Grid.precision ->
  config:Config.t ->
  Framework.source ->
  t

val tune :
  ?id:string ->
  ?deadline:float ->
  ?k:int ->
  ?dims:int array ->
  device:Gpu.Device.t ->
  prec:Stencil.Grid.precision ->
  steps:int ->
  Framework.source ->
  (t, string) result
(** Detects the pattern in the source (that is what tuning needs);
    [dims] defaults to the source's static grid sizes. [Error] when
    the source is not an AN5D stencil or has dynamic sizes and no
    [dims] was given. *)

val spec_key : spec -> string
(** Stable cache key of a compile request: digest of the source text
    plus the configuration, dims and precision renderings. Two specs
    with equal keys compile to interchangeable jobs. The precision is
    canonicalized before rendering: when [prec = None] the key uses
    the element precision detected from the source (storage precision
    changes the stored bits, so an omitted [prec] must coalesce with a
    spelled-out one only when they resolve to the same element type);
    sources that fail detection keep the literal ["auto"]. *)

val key : t -> string
(** Stable cache key of the whole request. For [Simulate] it extends
    {!spec_key} with device, steps, input seed and the semantic
    {!Run_config.cache_key} — everything that can change the served
    bits; for [Tune], source digest, device, precision, dims, steps
    and [k]. *)

val transfer_key : t -> string option
(** The {e device-agnostic} part of a tune request's cache key: equal
    for two tune requests that differ only in target device. This is
    what the session's cross-device tune transfer indexes its winner
    registry by — a cached winner under the same transfer key on
    another device seeds this device's search (docs/SERVING.md
    §transfer). [None] for compile/simulate requests. *)

val key_schema_digest : string
(** Digest of the cache-key grammar this build writes: sample
    renderings of {!spec_key}, {!key} (simulate and tune) and
    {!An5d_core.Run_config.cache_key} over fixed probe inputs. Any
    change to a key format changes this digest, which is exactly what
    {!Session.load} uses to refuse dumps written by builds with a
    different key schema. *)

val kind : t -> string
(** ["compile"], ["simulate"] or ["tune"] (for metrics/span labels). *)

(** {1 JSON spec encoding}

    The request spec and run configuration over {!Json} — the encoding
    worker task descriptors ({!Workers}) ship over the versioned wire
    protocol, and the one clients receive in payloads. Shares the
    canonical spellings of the line grammar (mode/impl/precision
    strings, dims as arrays); round-tripping is pinned by
    test/test_workers.ml. The [of_json] directions are total. *)

val config_to_json : Config.t -> Json.t

val config_of_json : Json.t -> (Config.t, string) result

val run_to_json : Run_config.t -> Json.t

val run_of_json : Json.t -> (Run_config.t, string) result

val spec_to_json : spec -> Json.t

val spec_of_json : Json.t -> (spec, string) result

val resolve_source : string -> (Framework.source, string) result
(** Resolve a stencil name: a built-in benchmark name (its generated C
    source, origin = the benchmark name) or a readable C file path. *)

val of_line : string -> (t, string) result
(** Parse one request line of the batch-file syntax:
    [KIND STENCIL \[key=value...\]] where KIND is
    [simulate|tune|compile], STENCIL a benchmark name or C file path,
    and the options are [bt=4] [bs=32x16] [hs=256] [reg-limit=64]
    [dims=512x512] [prec=float|double] [device=v100|p100] [steps=100]
    [seed=1] [k=5] [mode=direct|partial-sums] [impl=compiled|closure|bigarray]
    [shards=N] [workers=N] [verify=true|false] [id=NAME]
    [deadline=SECONDS].
    Blank lines and [#] comments are the caller's concern. *)

val pp : Format.formatter -> t -> unit
