(** Per-client admission control for the socket serving front end: a
    token bucket per client id, layered {e in front of} the session's
    [queue_capacity]/deadline shedding so one flooding client cannot
    starve the others (docs/SERVING.md §admission).

    Every client accrues [rate] tokens per second up to [burst]; a
    request consumes one token, and a client with an empty bucket is
    {e shed} — the server still serves it through the degraded
    [bt = 1] path ({!Session.submit_shed}), never drops it. Buckets are
    independent, so a quiet client's tokens are untouched by a
    flooder — the fairness test in test/test_wire.ml pins the exact
    per-client shed accounting.

    Shed decisions increment the global [admission_sheds_total] counter
    and a per-client [admission_sheds_per_client_<id>] counter in
    {!Obs.Metrics} (ids sanitized to metric-name characters); exact
    integer accounting is also kept internally and exposed via
    {!stats}. Thread-safe. *)

type t

val create : ?clock:(unit -> float) -> ?burst:int -> ?rate:float -> unit -> t
(** [create ()] makes an admission controller. [burst] (default 32) is
    the bucket capacity in requests; [rate] (default 16.0) the refill
    rate in requests per second; [clock] (default [Unix.gettimeofday])
    is injectable for deterministic tests. [rate = infinity] admits
    everything (the line-mode default).
    @raise Invalid_argument when [burst < 1] or [rate <= 0]. *)

val unlimited : unit -> t
(** An admission controller that never sheds. *)

val admit : t -> client:string -> bool
(** Take one token from [client]'s bucket; [false] means the request
    must be shed (served degraded, not dropped). A client seen for the
    first time starts with a full bucket. *)

type stat = {
  admitted : int;  (** requests that consumed a token *)
  shed : int;  (** requests refused a token *)
  tokens : float;  (** bucket level at the last [admit] call *)
}

val sheds : t -> client:string -> int
(** Exact shed count for one client (0 when never seen). *)

val stats : t -> (string * stat) list
(** Per-client accounting, sorted by client id. *)
