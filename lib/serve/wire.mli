(** The serving layer's framed wire protocol (docs/SERVING.md §wire
    protocol): versioned, length-prefixed JSON frames over a byte
    stream, so many clients can multiplex onto one {!Session} behind a
    Unix-domain or TCP socket ({!Server}).

    Framing: each frame is a 4-byte big-endian payload length followed
    by that many bytes of JSON. The length is hard-bounded by
    {!max_frame_bytes}; a peer announcing a larger frame is rejected
    before any allocation. The JSON payload is an object carrying the
    protocol version in ["v"] and the frame type in ["t"]; unknown
    fields are ignored, so minor additions stay compatible within a
    version.

    Sessions open with an explicit handshake: the client's first frame
    must be [Hello], and the server answers [Hello] with its own
    version and the client id it will account the connection under.

    The decoder is total: any byte string — truncated, oversized,
    non-JSON, wrong version, wrong shape — decodes to an [Error]
    result, never an exception (the adversarial fuzz in
    test/test_wire.ml pins this, ≥200 cases). Protocol-level rejects
    are counted by the [wire_rejects] metric; every decoded/encoded
    frame by [wire_frames_in]/[wire_frames_out]. *)

(** A minimal JSON value — re-exported from {!Json}, the serve layer's
    one shared total codec, so wire frames, worker task descriptors and
    payload builders cannot drift apart. The constructors are the same;
    [Wire.Obj ...] and [Json.Obj ...] are interchangeable. *)
type json = Json.t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | Arr of json list
  | Obj of (string * json) list

val json_to_string : json -> string
(** {!Json.to_string}: compact rendering with full string escaping. *)

val json_of_string : string -> (json, string) result
(** {!Json.of_string}: total recursive-descent parser — bounded nesting
    depth, no exceptions escape. *)

val version : int
(** Protocol version spoken by this build (currently 1). Bumped on any
    incompatible frame change; peers with a different version are
    answered with an [Error] frame at handshake. *)

val max_frame_bytes : int
(** Hard bound on a frame payload (4 MiB). Announcing more is a
    framing-level reject: the connection cannot be resynchronized and
    is closed after a best-effort [Error] frame. *)

type frame =
  | Hello of { version : int; client : string }
      (** handshake, both directions: the client proposes its version
          and (optionally empty) preferred id; the server confirms its
          version and the accounting id it assigned *)
  | Request of { id : string option; line : string }
      (** one serving request in the established line syntax
          ([KIND STENCIL key=value...] — the same grammar as
          [an5d batch] files, parsed by {!Request.of_line}) *)
  | Response of {
      id : string option;
      status : string;  (** [done], [degraded:overload],
                            [degraded:deadline], [cancelled], [failed] *)
      served : string;  (** [cold], [warm], [coalesced] *)
      latency : float;  (** seconds *)
      payload : json;  (** kind-specific result body; simulate
                           responses carry the result grid's
                           {!Stencil.Grid.digest} and exact counters so
                           clients can assert bit-identical service *)
    }
  | Error of { id : string option; message : string }
      (** protocol-level reject (bad frame, unknown verb, version
          mismatch); request-level failures are [Response]s with
          [status = failed] *)
  | Stats of { body : json }
      (** [Stats Null] from a client requests the session statistics;
          the server answers [Stats <object>] *)

val pp_frame : Format.formatter -> frame -> unit

val encode_payload : frame -> string
(** The JSON payload bytes of a frame (no length prefix). *)

val decode_payload : string -> (frame, string) result
(** Inverse of {!encode_payload}; total. *)

val encode : frame -> string
(** Full wire bytes: length prefix + payload.
    @raise Invalid_argument if the payload exceeds {!max_frame_bytes}
    (a server bug, not a peer behavior). *)

(** Why a read failed. [Closed] — clean EOF between frames;
    [Truncated] — EOF inside a frame; [Oversized n] — the peer
    announced an [n]-byte payload beyond {!max_frame_bytes} (framing
    lost, close the connection); [Malformed msg] — the payload was read
    but did not decode (framing intact, answer with an [Error] frame
    and continue). *)
type read_error = Closed | Truncated | Oversized of int | Malformed of string

val read_error_to_string : read_error -> string

val read_frame : Unix.file_descr -> (frame, read_error) result
(** Blocking exact read of one frame. Never raises on peer-controlled
    bytes; [Unix_error] from the descriptor itself (reset connections)
    is mapped to [Closed]/[Truncated]. *)

val write_frame : Unix.file_descr -> frame -> (unit, string) result
(** Blocking exact write of {!encode}. A peer that disappeared
    mid-write ([EPIPE], reset) yields [Error], never an exception — the
    server must survive clients vanishing at any point. *)
