(* Per-client token-bucket admission control. See admission.mli. *)

type bucket = {
  mutable tokens : float;
  mutable last_refill : float;
  mutable admitted : int;
  mutable shed : int;
  shed_counter : Obs.Metrics.counter;
}

type t = {
  burst : float;
  rate : float;  (* tokens per second; infinity = never shed *)
  clock : unit -> float;
  buckets : (string, bucket) Hashtbl.t;
  lock : Mutex.t;
}

let m_sheds_total = Obs.Metrics.counter "admission_sheds_total"

let m_admitted_total = Obs.Metrics.counter "admission_admitted_total"

(* Client ids come off the wire; keep metric names sane. *)
let sanitize id =
  let b = Buffer.create (String.length id) in
  String.iter
    (fun c ->
      match c with
      | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '-' | '_' | '.' ->
          if Buffer.length b < 48 then Buffer.add_char b c
      | _ -> if Buffer.length b < 48 then Buffer.add_char b '_')
    id;
  if Buffer.length b = 0 then "anonymous" else Buffer.contents b

let create ?(clock = Unix.gettimeofday) ?(burst = 32) ?(rate = 16.0) () =
  if burst < 1 then invalid_arg "Admission.create: burst must be positive";
  if rate <= 0.0 then invalid_arg "Admission.create: rate must be positive";
  {
    burst = float burst;
    rate;
    clock;
    buckets = Hashtbl.create 16;
    lock = Mutex.create ();
  }

let unlimited () = create ~rate:infinity ()

let bucket_for t client =
  match Hashtbl.find_opt t.buckets client with
  | Some b -> b
  | None ->
      let b =
        {
          tokens = t.burst;
          last_refill = t.clock ();
          admitted = 0;
          shed = 0;
          shed_counter =
            Obs.Metrics.counter
              ("admission_sheds_per_client_" ^ sanitize client);
        }
      in
      Hashtbl.replace t.buckets client b;
      b

let admit t ~client =
  Mutex.protect t.lock @@ fun () ->
  let b = bucket_for t client in
  let now = t.clock () in
  (if Float.is_finite t.rate then
     let dt = Float.max 0.0 (now -. b.last_refill) in
     b.tokens <- Float.min t.burst (b.tokens +. (dt *. t.rate)));
  b.last_refill <- now;
  if (not (Float.is_finite t.rate)) || b.tokens >= 1.0 then begin
    if Float.is_finite t.rate then b.tokens <- b.tokens -. 1.0;
    b.admitted <- b.admitted + 1;
    Obs.Metrics.incr m_admitted_total;
    true
  end
  else begin
    b.shed <- b.shed + 1;
    Obs.Metrics.incr b.shed_counter;
    Obs.Metrics.incr m_sheds_total;
    false
  end

type stat = { admitted : int; shed : int; tokens : float }

let sheds t ~client =
  Mutex.protect t.lock @@ fun () ->
  match Hashtbl.find_opt t.buckets client with Some b -> b.shed | None -> 0

let stats t =
  Mutex.protect t.lock @@ fun () ->
  Hashtbl.fold
    (fun client (b : bucket) acc ->
      (client, { admitted = b.admitted; shed = b.shed; tokens = b.tokens }) :: acc)
    t.buckets []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)
