(** Long-lived shard worker processes: the registry [an5d serve
    --workers N] fans sharded simulate requests across, and the worker
    process entrypoint itself (docs/SHARDING.md §phase 2).

    A registry pre-spawns [n] worker processes, each on its own
    socketpair. The conversation with a worker has two strictly ordered
    phases on that one descriptor: the {e task} phase speaks the
    versioned {!Wire} JSON protocol (a [Hello] handshake at spawn, one
    [Stats] frame carrying the task descriptor per run, one [Response]
    carrying the merged counters back), and between those two frames
    the {e run} phase speaks the binary shard transport
    ({!Shard.Transport.Pipe}) that moves halo planes.

    Failure semantics — never a dropped request: a worker that dies
    mid-run (or answers garbage) raises a {!Shard.Transport.Failed}
    attributed to it; the registry counts the crash, tears down and
    eagerly respawns the workers that run touched, and retries the
    request on the in-process path ({!Framework.simulate_cfg}), which
    is bit-identical by the shard differential. Accounting
    ({!Obs.Metrics}): [worker_spawns] per spawn attempt,
    [worker_crashes] per attributed crash or silently-found death,
    [worker_retries] per in-process fallback. *)

open An5d_core

(** Fault injection for the worker entrypoint (test/test_workers.ml's
    fault matrix): never complete the startup handshake, exit the
    process at the Nth kernel call (mid-chunk death), or answer every
    halo pull with a wrong-length junk frame. *)
type chaos = No_hello | Die_at_advance of int | Garbage_planes

(** How the registry starts a worker process: [Fork] a child running
    {!worker_main} in-image (tests; single-domain callers only — fork
    in a multi-domain runtime is not safe), [Exec] an argv (the CLI
    spawns [an5d worker] with the socketpair on stdin/stdout), or
    [Custom] a forked function (fault harnesses standing in for a
    worker). *)
type spawn =
  | Fork
  | Exec of string array
  | Custom of (Unix.file_descr -> unit)

type t
(** A registry of worker processes. Not thread-safe: callers serialize
    requests through it (the session's batch lock already does). *)

val create :
  ?spawn:spawn ->
  ?chaos:chaos ->
  ?timeout:float ->
  ?hello_timeout:float ->
  int ->
  t
(** [create n] pre-spawns [n] workers and completes their handshakes.
    [chaos] is injected into [Fork]-spawned workers. [hello_timeout]
    (default 5s) bounds the startup handshake; [timeout] (default 30s)
    every later read from a worker. A worker that fails its handshake
    is counted crashed and left dead — {!simulate} re-attempts the
    spawn per request and falls back in-process while it keeps
    failing.
    @raise Invalid_argument when [n < 1]. *)

val size : t -> int

val pid : t -> int -> int
(** Worker process id ([-1] when dead) — the hook fault tests use to
    [SIGKILL] a real worker between requests. *)

val alive : t -> int -> bool

val kill : t -> int -> unit
(** [SIGKILL] a worker (test hook). The death is discovered, counted
    and repaired by the next {!simulate}'s health check. *)

val ensure_alive : t -> bool
(** Health-check every worker ([waitpid WNOHANG]), counting and
    reaping silent deaths, then attempt one respawn per dead slot.
    Returns whether the whole registry is up. Called by {!simulate};
    exposed for the serve loop's periodic check. *)

val shutdown : t -> unit
(** Close every worker's descriptor (their read loop exits on EOF) and
    reap them. The registry is dead afterwards. *)

val simulate :
  t ->
  spec:Request.spec ->
  job:Framework.job ->
  device:Gpu.Device.t ->
  steps:int ->
  seed:int ->
  run:Run_config.t ->
  Framework.outcome
(** Execute one sharded simulate request across the registry's
    workers and return the same {!Framework.outcome} the in-process
    path produces — bit-identical grid, counters and launch stats
    (test/test_workers.ml's differential): the decomposition is
    exactly [Shard.make ~shards:run.shards] regardless of worker
    count, each worker advances its contiguous block of shards with
    the same [kernel_call] closure, counters merge commutatively, and
    the halo cadence (one exchange per temporal chunk) is owned by the
    shared {!Shard.run_via} driver. Uses [min n run.shards] workers.
    On any worker failure the request is retried in-process — never
    dropped.
    @raise Invalid_argument when [run.shards < 2] (route resident runs
    through {!Framework.simulate_cfg} directly). *)

val worker_main : ?chaos:chaos -> Unix.file_descr -> unit
(** The worker process body ([an5d worker] runs this on stdin): send
    the Wire hello, then serve task frames — compile the spec, build
    per-shard execution models and machines exactly as the in-process
    sharded path does, answer the binary halo/advance/gather exchange
    ({!Shard.Transport.Pipe.serve}), and reply with the merged
    counters — until EOF. *)

val counters_to_json : Gpu.Counters.t -> Json.t

val counters_of_json : Json.t -> Gpu.Counters.t
(** Total: missing fields read as zero. Round-trips exactly
    ([counters_of_json (counters_to_json c)] is field-equal to [c]). *)
