(* The serving layer's single JSON codec. See json.mli. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

(* ------------------------------------------------------------------ *)
(* Rendering                                                           *)
(* ------------------------------------------------------------------ *)

let escape_to buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let rec render_to buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float f ->
      if Float.is_finite f then Buffer.add_string buf (Printf.sprintf "%.17g" f)
      else Buffer.add_string buf "null"
  | Str s -> escape_to buf s
  | Arr xs ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i x ->
          if i > 0 then Buffer.add_char buf ',';
          render_to buf x)
        xs;
      Buffer.add_char buf ']'
  | Obj kvs ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char buf ',';
          escape_to buf k;
          Buffer.add_char buf ':';
          render_to buf v)
        kvs;
      Buffer.add_char buf '}'

let to_string j =
  let buf = Buffer.create 256 in
  render_to buf j;
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Parsing — total: no exception escapes, nesting depth bounded        *)
(* ------------------------------------------------------------------ *)

exception Parse of string

let max_depth = 64

let of_string s =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Parse (Printf.sprintf "%s at byte %d" msg !pos)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | _ -> fail (Printf.sprintf "expected '%c'" c)
  in
  let skip_ws () =
    while
      !pos < n && (match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false)
    do
      advance ()
    done
  in
  let literal word v =
    let l = String.length word in
    if !pos + l <= n && String.sub s !pos l = word then begin
      pos := !pos + l;
      v
    end
    else fail "invalid literal"
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      if !pos >= n then fail "unterminated string"
      else
        match s.[!pos] with
        | '"' -> advance ()
        | '\\' ->
            advance ();
            (if !pos >= n then fail "unterminated escape"
             else
               match s.[!pos] with
               | '"' -> Buffer.add_char buf '"'; advance ()
               | '\\' -> Buffer.add_char buf '\\'; advance ()
               | '/' -> Buffer.add_char buf '/'; advance ()
               | 'b' -> Buffer.add_char buf '\b'; advance ()
               | 'f' -> Buffer.add_char buf '\012'; advance ()
               | 'n' -> Buffer.add_char buf '\n'; advance ()
               | 'r' -> Buffer.add_char buf '\r'; advance ()
               | 't' -> Buffer.add_char buf '\t'; advance ()
               | 'u' ->
                   advance ();
                   if !pos + 4 > n then fail "truncated \\u escape";
                   let hex = String.sub s !pos 4 in
                   let code =
                     match int_of_string_opt ("0x" ^ hex) with
                     | Some c -> c
                     | None -> fail "bad \\u escape"
                   in
                   pos := !pos + 4;
                   (* encode the code point as UTF-8 (surrogates kept
                      as-is in their raw 3-byte form — round-tripping
                      arbitrary escapes is not a wire requirement) *)
                   if code < 0x80 then Buffer.add_char buf (Char.chr code)
                   else if code < 0x800 then begin
                     Buffer.add_char buf (Char.chr (0xC0 lor (code lsr 6)));
                     Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
                   end
                   else begin
                     Buffer.add_char buf (Char.chr (0xE0 lor (code lsr 12)));
                     Buffer.add_char buf
                       (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
                     Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
                   end
               | c -> fail (Printf.sprintf "bad escape '\\%c'" c));
            go ()
        | c ->
            Buffer.add_char buf c;
            advance ();
            go ()
    in
    go ();
    Buffer.contents buf
  in
  let parse_number () =
    let start = !pos in
    let is_num_char c =
      match c with
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while !pos < n && is_num_char s.[!pos] do
      advance ()
    done;
    let tok = String.sub s start (!pos - start) in
    match int_of_string_opt tok with
    | Some i -> Int i
    | None -> (
        match float_of_string_opt tok with
        | Some f -> Float f
        | None -> fail (Printf.sprintf "bad number %S" tok))
  in
  let rec parse_value depth =
    if depth > max_depth then fail "nesting too deep";
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some 'n' -> literal "null" Null
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some '"' -> Str (parse_string ())
    | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then begin
          advance ();
          Arr []
        end
        else begin
          let items = ref [] in
          let rec items_loop () =
            items := parse_value (depth + 1) :: !items;
            skip_ws ();
            match peek () with
            | Some ',' -> advance (); items_loop ()
            | Some ']' -> advance ()
            | _ -> fail "expected ',' or ']'"
          in
          items_loop ();
          Arr (List.rev !items)
        end
    | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then begin
          advance ();
          Obj []
        end
        else begin
          let fields = ref [] in
          let rec fields_loop () =
            skip_ws ();
            let k = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value (depth + 1) in
            fields := (k, v) :: !fields;
            skip_ws ();
            match peek () with
            | Some ',' -> advance (); fields_loop ()
            | Some '}' -> advance ()
            | _ -> fail "expected ',' or '}'"
          in
          fields_loop ();
          Obj (List.rev !fields)
        end
    | Some ('-' | '0' .. '9') -> parse_number ()
    | Some c -> fail (Printf.sprintf "unexpected '%c'" c)
  in
  match
    let v = parse_value 0 in
    skip_ws ();
    if !pos <> n then fail "trailing bytes after value";
    v
  with
  | v -> Ok v
  | exception Parse msg -> Error msg
  | exception Stack_overflow -> Error "nesting too deep"

(* ------------------------------------------------------------------ *)
(* Accessors                                                           *)
(* ------------------------------------------------------------------ *)

let field obj k = match obj with Obj kvs -> List.assoc_opt k kvs | _ -> None

let str_field obj k =
  match field obj k with Some (Str s) -> Some s | _ -> None

let int_field obj k =
  match field obj k with Some (Int i) -> Some i | _ -> None

let num_field obj k =
  match field obj k with
  | Some (Float f) -> Some f
  | Some (Int i) -> Some (float_of_int i)
  | _ -> None

let bool_field obj k =
  match field obj k with Some (Bool b) -> Some b | _ -> None

let int_list_field obj k =
  match field obj k with
  | Some (Arr xs) ->
      let ints =
        List.filter_map (function Int i -> Some i | _ -> None) xs
      in
      if List.length ints = List.length xs then Some ints else None
  | _ -> None

let of_int_array a = Arr (Array.to_list (Array.map (fun i -> Int i) a))
