(* Serving-layer requests, cache keys and the batch-line syntax. See
   request.mli. *)

open An5d_core

type spec = {
  source : Framework.source;
  config : Config.t;
  dims : int array option;
  prec : Stencil.Grid.precision option;
}

type body =
  | Compile of spec
  | Simulate of {
      spec : spec;
      device : Gpu.Device.t;
      steps : int;
      seed : int;
      run : Run_config.t;
    }
  | Tune of {
      pattern : Stencil.Pattern.t;
      source_digest : string;
      device : Gpu.Device.t;
      prec : Stencil.Grid.precision;
      dims : int array;
      steps : int;
      k : int;
    }

type t = { id : string option; deadline : float option; body : body }

let compile ?id ?deadline ?dims ?prec ~config source =
  { id; deadline; body = Compile { source; config; dims; prec } }

let simulate ?id ?deadline ?dims ?prec ?(seed = 0)
    ?(run = Run_config.default) ~config ~device ~steps source =
  { id; deadline;
    body = Simulate { spec = { source; config; dims; prec }; device; steps; seed; run } }

let detect_for_tune ?dims source =
  match Stencil.Detect.of_string source.Framework.text with
  | exception Stencil.Detect.Rejected msg ->
      Error (Fmt.str "%s: not an AN5D stencil: %s" source.Framework.origin msg)
  | exception Cparse.Lexer.Error (msg, _) ->
      Error (Fmt.str "%s: lexical error: %s" source.Framework.origin msg)
  | exception Cparse.Parser.Error (msg, _) ->
      Error (Fmt.str "%s: syntax error: %s" source.Framework.origin msg)
  | r -> (
      match (dims, r.Stencil.Detect.grid_dims) with
      | Some d, _ -> Ok (r, d)
      | None, Some d -> Ok (r, d)
      | None, None ->
          Error
            (Fmt.str "%s: dynamic grid sizes; tuning needs dims=..."
               source.Framework.origin))

let tune ?id ?deadline ?(k = 5) ?dims ~device ~prec ~steps source =
  Result.map
    (fun (r, dims) ->
      { id; deadline;
        body =
          Tune
            { pattern = r.Stencil.Detect.pattern;
              source_digest = Digest.to_hex (Digest.string source.Framework.text);
              device; prec; dims; steps; k } })
    (detect_for_tune ?dims source)

(* ------------------------------------------------------------------ *)
(* Cache keys                                                          *)
(* ------------------------------------------------------------------ *)

let dims_str = function
  | None -> "auto"
  | Some d -> String.concat "x" (Array.to_list (Array.map string_of_int d))

let prec_str = function
  | None -> "auto"
  | Some p -> Stencil.Grid.precision_to_string p

(* Precision-correct digests: with bigarray storage the precision
   changes the stored element type, so a spec that omits [prec] must
   key identically to one spelling out the precision the source
   detects to — the compiled job is the same job. Canonicalize by
   resolving the detected element type; sources that fail detection
   keep the literal "auto" (they fail identically at compile time, so
   coalescing them is still sound). *)
let resolved_prec s =
  match s.prec with
  | Some _ -> s.prec
  | None -> (
      match Stencil.Detect.of_string s.source.Framework.text with
      | r -> Some r.Stencil.Detect.elem_prec
      | exception _ -> None)

let spec_key s =
  Fmt.str "(job (src %s) (config %s) (dims %s) (prec %s))"
    (Digest.to_hex (Digest.string s.source.Framework.text))
    (Config.to_string s.config) (dims_str s.dims)
    (prec_str (resolved_prec s))

let key t =
  match t.body with
  | Compile spec -> spec_key spec
  | Simulate { spec; device; steps; seed; run } ->
      Fmt.str "(simulate %s (device %s) (steps %d) (seed %d) %s)" (spec_key spec)
        device.Gpu.Device.name steps seed
        (Run_config.cache_key run)
  | Tune { source_digest; device; prec; dims; steps; k; _ } ->
      Fmt.str "(tune (src %s) (device %s) (prec %s) (dims %s) (steps %d) (k %d))"
        source_digest device.Gpu.Device.name
        (Stencil.Grid.precision_to_string prec)
        (dims_str (Some dims)) steps k

(* The device-agnostic projection of the tune key: what cross-device
   transfer indexes winners by. Everything of [key]'s Tune branch
   except the device. *)
let transfer_key t =
  match t.body with
  | Compile _ | Simulate _ -> None
  | Tune { source_digest; prec; dims; steps; k; _ } ->
      Some
        (Fmt.str "(tune-transfer (src %s) (prec %s) (dims %s) (steps %d) (k %d))"
           source_digest
           (Stencil.Grid.precision_to_string prec)
           (dims_str (Some dims)) steps k)

(* Self-maintaining schema fingerprint: renders every key former over
   fixed probe inputs, so any change to a key grammar — fields, order,
   canonicalization — changes the digest and stale dumps refuse to
   load (Persist). The probe source deliberately fails detection
   (exercising the "auto" precision branch deterministically). *)
let key_schema_digest =
  let source = Framework.source_of_string ~origin:"schema-probe" "schema probe" in
  let config = Config.make ~bt:2 ~bs:[| 16 |] () in
  let spec = { source; config; dims = Some [| 8; 8 |]; prec = None } in
  let sim =
    { id = None; deadline = None;
      body =
        Simulate
          { spec = { spec with prec = Some Stencil.Grid.F64 };
            device = Gpu.Device.v100; steps = 1; seed = 0;
            run = Run_config.default } }
  in
  let tun =
    { id = None; deadline = None;
      body =
        Tune
          { pattern =
              Stencil.Pattern.make ~name:"schema-probe" ~dims:2 ~params:[]
                (Stencil.Sexpr.weighted_sum
                   (Stencil.Shape.star_offsets ~dims:2 ~rad:1));
            source_digest = Digest.to_hex (Digest.string "schema probe");
            device = Gpu.Device.v100; prec = Stencil.Grid.F64;
            dims = [| 8; 8 |]; steps = 1; k = 1 } }
  in
  Digest.to_hex
    (Digest.string
       (String.concat "|"
          [ spec_key spec; key sim; key tun;
            Option.get (transfer_key tun);
            Run_config.cache_key Run_config.default ]))

(* ------------------------------------------------------------------ *)
(* JSON spec encoding (the worker task descriptors of {!Workers})      *)
(* ------------------------------------------------------------------ *)

(* One shared encoding of the request spec over {!Json}, so worker
   frames and client payloads cannot drift from the line grammar: the
   same fields, the same canonical spellings (mode/impl/prec strings,
   dims as arrays), round-tripped by test/test_workers.ml. *)

let ( let* ) = Result.bind

let config_to_json (c : Config.t) =
  Json.Obj
    [
      ("bt", Json.Int c.Config.bt);
      ("bs", Json.of_int_array c.Config.bs);
      ("hs", match c.Config.hs with None -> Json.Null | Some h -> Json.Int h);
      ( "reg_limit",
        match c.Config.reg_limit with None -> Json.Null | Some r -> Json.Int r );
      ("diag_opt", Json.Bool c.Config.diag_opt);
      ("assoc_opt", Json.Bool c.Config.assoc_opt);
      ("double_buffer", Json.Bool c.Config.double_buffer);
    ]

let config_of_json j =
  match (Json.int_field j "bt", Json.int_list_field j "bs") with
  | Some bt, Some bs ->
      Ok
        (Config.make ~hs:(Json.int_field j "hs")
           ~reg_limit:(Json.int_field j "reg_limit")
           ~diag_opt:(Option.value (Json.bool_field j "diag_opt") ~default:true)
           ~assoc_opt:(Option.value (Json.bool_field j "assoc_opt") ~default:true)
           ~double_buffer:
             (Option.value (Json.bool_field j "double_buffer") ~default:false)
           ~bt ~bs:(Array.of_list bs) ())
  | _ -> Error "config object missing bt/bs"

let run_to_json (r : Run_config.t) =
  Json.Obj
    [
      ("mode", Json.Str (Run_config.mode_to_string r.Run_config.mode));
      ("impl", Json.Str (Run_config.impl_to_string r.Run_config.impl));
      ("domains", Json.Int r.Run_config.domains);
      ("shards", Json.Int r.Run_config.shards);
      ("workers", Json.Int r.Run_config.workers);
      ("verify", Json.Bool r.Run_config.verify);
    ]

let run_of_json j =
  let* mode =
    Run_config.mode_of_string
      (Option.value (Json.str_field j "mode") ~default:"direct")
  in
  let* impl =
    Run_config.impl_of_string
      (Option.value (Json.str_field j "impl") ~default:"compiled")
  in
  Ok
    (Run_config.make ~mode ~impl
       ~domains:(Option.value (Json.int_field j "domains") ~default:1)
       ~shards:(Option.value (Json.int_field j "shards") ~default:1)
       ~workers:(Option.value (Json.int_field j "workers") ~default:1)
       ~verify:(Option.value (Json.bool_field j "verify") ~default:true)
       ())

let spec_to_json (s : spec) =
  Json.Obj
    [
      ("source", Json.Str s.source.Framework.text);
      ("origin", Json.Str s.source.Framework.origin);
      ("config", config_to_json s.config);
      ("dims", match s.dims with None -> Json.Null | Some d -> Json.of_int_array d);
      ( "prec",
        match s.prec with
        | None -> Json.Null
        | Some p -> Json.Str (Stencil.Grid.precision_to_string p) );
    ]

let spec_of_json j =
  match Json.str_field j "source" with
  | None -> Error "spec missing source"
  | Some text ->
      let origin = Option.value (Json.str_field j "origin") ~default:"<wire>" in
      let* config =
        match Json.field j "config" with
        | Some c -> config_of_json c
        | None -> Error "spec missing config"
      in
      let dims =
        Option.map Array.of_list (Json.int_list_field j "dims")
      in
      let* prec =
        match Json.str_field j "prec" with
        | None -> Ok None
        | Some "float" -> Ok (Some Stencil.Grid.F32)
        | Some "double" -> Ok (Some Stencil.Grid.F64)
        | Some p -> Error (Fmt.str "unknown precision %s" p)
      in
      Ok
        {
          source = Framework.source_of_string ~origin text;
          config;
          dims;
          prec;
        }

let kind t =
  match t.body with
  | Compile _ -> "compile"
  | Simulate _ -> "simulate"
  | Tune _ -> "tune"

(* ------------------------------------------------------------------ *)
(* Stencil-name resolution and the batch-line syntax                   *)
(* ------------------------------------------------------------------ *)

let resolve_source name =
  match Bench_defs.Benchmarks.find name with
  | Some b ->
      Ok (Framework.source_of_string ~origin:b.Bench_defs.Benchmarks.name
            b.Bench_defs.Benchmarks.c_source)
  | None ->
      if Sys.file_exists name then Framework.source_of_file_result name
      else
        Error
          (Fmt.str "unknown stencil %s (not a benchmark name or readable file)" name)

let ( let* ) = Result.bind

let parse_kv tok =
  match String.index_opt tok '=' with
  | Some i ->
      Ok (String.sub tok 0 i, String.sub tok (i + 1) (String.length tok - i - 1))
  | None -> Error (Fmt.str "expected key=value, got %s" tok)

let parse_int k v =
  match int_of_string_opt v with
  | Some n -> Ok n
  | None -> Error (Fmt.str "%s expects an integer, got %s" k v)

let parse_dims k v =
  let parts = String.split_on_char 'x' v in
  let ints = List.filter_map int_of_string_opt parts in
  if List.length ints = List.length parts && ints <> [] then
    Ok (Array.of_list ints)
  else Error (Fmt.str "%s expects e.g. 512x512, got %s" k v)

let parse_prec v =
  match String.lowercase_ascii v with
  | "float" | "f32" -> Ok Stencil.Grid.F32
  | "double" | "f64" -> Ok Stencil.Grid.F64
  | _ -> Error (Fmt.str "prec expects float or double, got %s" v)

let parse_device v =
  match Gpu.Device.find v with
  | Some d -> Ok d
  | None -> Error (Fmt.str "unknown device %s (try v100 or p100)" v)

let parse_bool k v =
  match String.lowercase_ascii v with
  | "true" | "yes" | "1" -> Ok true
  | "false" | "no" | "0" -> Ok false
  | _ -> Error (Fmt.str "%s expects true or false, got %s" k v)

(* Accumulator of all recognized options; each request kind picks what
   it needs. *)
type opts = {
  bt : int;
  bs : int array;
  hs : int option;
  reg_limit : int option;
  o_dims : int array option;
  o_prec : Stencil.Grid.precision option;
  device : Gpu.Device.t;
  steps : int;
  seed : int;
  k : int;
  run : Run_config.t;
  o_id : string option;
  o_deadline : float option;
}

let default_opts =
  {
    bt = 4;
    bs = [| 256 |];
    hs = None;
    reg_limit = None;
    o_dims = None;
    o_prec = None;
    device = Gpu.Device.v100;
    steps = 100;
    seed = 0;
    k = 5;
    run = Run_config.default;
    o_id = None;
    o_deadline = None;
  }

let apply_opt o (k, v) =
  match k with
  | "bt" ->
      let* n = parse_int k v in
      Ok { o with bt = n }
  | "bs" ->
      let* d = parse_dims k v in
      Ok { o with bs = d }
  | "hs" ->
      let* n = parse_int k v in
      Ok { o with hs = Some n }
  | "reg-limit" | "reg_limit" ->
      let* n = parse_int k v in
      Ok { o with reg_limit = Some n }
  | "dims" ->
      let* d = parse_dims k v in
      Ok { o with o_dims = Some d }
  | "prec" ->
      let* p = parse_prec v in
      Ok { o with o_prec = Some p }
  | "device" ->
      let* d = parse_device v in
      Ok { o with device = d }
  | "steps" ->
      let* n = parse_int k v in
      Ok { o with steps = n }
  | "seed" ->
      let* n = parse_int k v in
      Ok { o with seed = n }
  | "k" ->
      let* n = parse_int k v in
      Ok { o with k = n }
  | "mode" ->
      let* m = Run_config.mode_of_string v in
      Ok { o with run = Run_config.with_mode m o.run }
  | "impl" ->
      let* i = Run_config.impl_of_string v in
      Ok { o with run = Run_config.with_impl i o.run }
  | "shards" ->
      let* n = parse_int k v in
      if n >= 1 then Ok { o with run = Run_config.with_shards n o.run }
      else Error (Fmt.str "shards expects a positive integer, got %s" v)
  | "workers" ->
      let* n = parse_int k v in
      if n >= 1 then Ok { o with run = Run_config.with_workers n o.run }
      else Error (Fmt.str "workers expects a positive integer, got %s" v)
  | "verify" ->
      let* b = parse_bool k v in
      Ok { o with run = Run_config.with_verify b o.run }
  | "id" -> Ok { o with o_id = Some v }
  | "deadline" -> (
      match float_of_string_opt v with
      | Some d -> Ok { o with o_deadline = Some d }
      | None -> Error (Fmt.str "deadline expects seconds, got %s" v))
  | _ -> Error (Fmt.str "unknown option %s" k)

let parse_opts tokens =
  List.fold_left
    (fun acc tok ->
      let* o = acc in
      let* kv = parse_kv tok in
      apply_opt o kv)
    (Ok default_opts) tokens

let config_of_opts o =
  Config.make ~hs:o.hs ~reg_limit:o.reg_limit ~bt:o.bt ~bs:o.bs ()

let of_line line =
  match
    String.split_on_char ' ' (String.trim line)
    |> List.filter (fun s -> s <> "")
  with
  | [] -> Error "empty request line"
  | verb :: stencil :: opts_tokens -> (
      let* o = parse_opts opts_tokens in
      let* source = resolve_source stencil in
      match verb with
      | "compile" ->
          Ok
            (compile ?id:o.o_id ?deadline:o.o_deadline ?dims:o.o_dims
               ?prec:o.o_prec ~config:(config_of_opts o) source)
      | "simulate" ->
          Ok
            (simulate ?id:o.o_id ?deadline:o.o_deadline ?dims:o.o_dims
               ?prec:o.o_prec ~seed:o.seed ~run:o.run ~config:(config_of_opts o)
               ~device:o.device ~steps:o.steps source)
      | "tune" ->
          tune ?id:o.o_id ?deadline:o.o_deadline ~k:o.k ?dims:o.o_dims
            ~device:o.device
            ~prec:(Option.value o.o_prec ~default:Stencil.Grid.F64)
            ~steps:o.steps source
      | v -> Error (Fmt.str "unknown request kind %s (try simulate, tune, compile)" v))
  | [ v ] -> Error (Fmt.str "%s: missing stencil name" v)

let pp ppf t =
  let origin =
    match t.body with
    | Compile { source; _ } | Simulate { spec = { source; _ }; _ } ->
        source.Framework.origin
    | Tune { pattern; _ } -> pattern.Stencil.Pattern.name
  in
  Fmt.pf ppf "%s %s%a" (kind t) origin
    Fmt.(option (any " id=" ++ string))
    t.id
