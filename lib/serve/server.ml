(* Socket serving front end: threads over one session. See server.mli. *)

open An5d_core

let src_log = Logs.Src.create "an5d.server" ~doc:"AN5D socket server"

module Log = (val Logs.src_log src_log : Logs.LOG)

type t = {
  session : Session.t;
  admission : Admission.t;
  sock : Unix.file_descr;
  bound : Unix.sockaddr;
  unix_path : string option;
  stopping : bool Atomic.t;
  lock : Mutex.t;
  mutable clients : (Unix.file_descr * Thread.t) list;
  mutable accept_thread : Thread.t option;
  next_client : int Atomic.t;
}

let g_clients = Obs.Metrics.gauge "serve_socket_clients"

(* ------------------------------------------------------------------ *)
(* Addresses                                                           *)
(* ------------------------------------------------------------------ *)

let sockaddr_of_string s =
  match String.rindex_opt s ':' with
  | Some i -> (
      let host = String.sub s 0 i in
      let port = String.sub s (i + 1) (String.length s - i - 1) in
      match int_of_string_opt port with
      | Some p when p >= 0 && p < 65536 -> (
          let host = if host = "" then "127.0.0.1" else host in
          match Unix.inet_addr_of_string host with
          | addr -> Ok (Unix.ADDR_INET (addr, p))
          | exception Failure _ -> (
              match Unix.gethostbyname host with
              | { Unix.h_addr_list = [||]; _ } ->
                  Error (Fmt.str "host %s has no address" host)
              | h -> Ok (Unix.ADDR_INET (h.Unix.h_addr_list.(0), p))
              | exception Not_found -> Error (Fmt.str "unknown host %s" host)))
      | _ -> Error (Fmt.str "bad port %S in %S" port s))
  | None -> Ok (Unix.ADDR_UNIX s)

(* ------------------------------------------------------------------ *)
(* Per-response JSON payloads                                          *)
(* ------------------------------------------------------------------ *)

let served_str = function
  | Session.Cold -> "cold"
  | Session.Warm -> "warm"
  | Session.Coalesced -> "coalesced"

let status_str = function
  | Session.Done _ -> "done"
  | Session.Degraded (_, Session.Overload) -> "degraded:overload"
  | Session.Degraded (_, Session.Deadline_exceeded) -> "degraded:deadline"
  | Session.Cancelled -> "cancelled"
  | Session.Failed _ -> "failed"

let counters_json (c : Gpu.Counters.t) =
  Wire.Obj
    [
      ("gm_reads", Wire.Int c.Gpu.Counters.gm_reads);
      ("gm_writes", Wire.Int c.Gpu.Counters.gm_writes);
      ("sm_reads", Wire.Int c.Gpu.Counters.sm_reads);
      ("sm_writes", Wire.Int c.Gpu.Counters.sm_writes);
      ("fma", Wire.Int c.Gpu.Counters.fma);
      ("mul", Wire.Int c.Gpu.Counters.mul);
      ("add", Wire.Int c.Gpu.Counters.add);
      ("other", Wire.Int c.Gpu.Counters.other);
      ("kernel_launches", Wire.Int c.Gpu.Counters.kernel_launches);
      ("barriers", Wire.Int c.Gpu.Counters.barriers);
      ("cells_updated", Wire.Int c.Gpu.Counters.cells_updated);
    ]

let launch_json (s : Blocking.launch_stats) =
  Wire.Obj
    [
      ("n_tb", Wire.Int s.Blocking.n_tb);
      ("n_stream_blocks", Wire.Int s.Blocking.n_stream_blocks);
      ("n_thr", Wire.Int s.Blocking.n_thr);
      ("smem_bytes", Wire.Int s.Blocking.smem_bytes);
      ("regs_per_thread", Wire.Int s.Blocking.regs_per_thread);
      ("kernel_calls", Wire.Int s.Blocking.kernel_calls);
    ]

let config_str c = Fmt.str "%a" Config.pp c

(* Simulate responses ship the result grid's digest and the exact
   instruction/traffic counters, not the grid itself — enough for a
   client to assert bit-identical service (the socket differential in
   test/test_wire.ml) within the frame bound. *)
let payload_json = function
  | Session.Compiled { job = _; cuda } ->
      Wire.Obj [ ("kind", Wire.Str "compile"); ("cuda", Wire.Str cuda) ]
  | Session.Simulated { outcome; config } ->
      Wire.Obj
        [
          ("kind", Wire.Str "simulate");
          ("config", Wire.Str (config_str config));
          ("grid_digest", Wire.Str (Stencil.Grid.digest outcome.Framework.result));
          ( "verified",
            match outcome.Framework.verified with
            | Ok () -> Wire.Str "ok"
            | Error d ->
                Wire.Obj [ ("max_abs_deviation", Wire.Float d) ] );
          ("counters", counters_json outcome.Framework.counters);
          ("launch", launch_json outcome.Framework.stats);
        ]
  | Session.Tuned r ->
      Wire.Obj
        [
          ("kind", Wire.Str "tune");
          ("best", Wire.Str (config_str r.Model.Tuner.best));
          ("gflops", Wire.Float r.Model.Tuner.tuned.Model.Measure.gflops);
          ("model_gflops", Wire.Float r.Model.Tuner.model_gflops);
          ("explored", Wire.Int r.Model.Tuner.explored);
          ("pruned", Wire.Int r.Model.Tuner.pruned);
          ( "seeded",
            match r.Model.Tuner.seeded with
            | None -> Wire.Null
            | Some c -> Wire.Str (config_str c) );
        ]

let status_json = function
  | (Session.Done p | Session.Degraded (p, _)) -> payload_json p
  | Session.Cancelled -> Wire.Null
  | Session.Failed msg -> Wire.Obj [ ("message", Wire.Str msg) ]

let cache_json (s : Cache.stats) =
  Wire.Obj
    [
      ("hits", Wire.Int s.Cache.hits);
      ("misses", Wire.Int s.Cache.misses);
      ("coalesced", Wire.Int s.Cache.coalesced);
      ("evictions", Wire.Int s.Cache.evictions);
      ("expired", Wire.Int s.Cache.expired);
      ("size", Wire.Int s.Cache.size);
    ]

let stats_json t =
  let s = Session.stats t.session in
  Wire.Obj
    [
      ( "requests",
        Wire.Obj
          [
            ("total", Wire.Int s.Session.total);
            ("degraded", Wire.Int s.Session.degraded);
            ("cancelled", Wire.Int s.Session.cancelled);
            ("failed", Wire.Int s.Session.failed);
          ] );
      ("winners", Wire.Int s.Session.winners);
      ( "caches",
        Wire.Obj
          [
            ("job", cache_json s.Session.jobs);
            ("tune", cache_json s.Session.tunes);
            ("outcome", cache_json s.Session.outcomes);
          ] );
      ( "admission",
        Wire.Obj
          (List.map
             (fun (client, (st : Admission.stat)) ->
               ( client,
                 Wire.Obj
                   [
                     ("admitted", Wire.Int st.Admission.admitted);
                     ("shed", Wire.Int st.Admission.shed);
                   ] ))
             (Admission.stats t.admission)) );
      ("pretty", Wire.Str (Fmt.str "%a" Session.pp_stats s));
    ]

(* ------------------------------------------------------------------ *)
(* Client handling                                                     *)
(* ------------------------------------------------------------------ *)

let handle_request t ~client ~id line =
  match Request.of_line line with
  | Error msg -> Wire.Error { id; message = msg }
  | Ok req ->
      let id = match id with Some _ -> id | None -> req.Request.id in
      let resp =
        if Admission.admit t.admission ~client then Session.submit t.session req
        else Session.submit_shed t.session req
      in
      Wire.Response
        {
          id;
          status = status_str resp.Session.status;
          served = served_str resp.Session.served;
          latency = resp.Session.latency;
          payload = status_json resp.Session.status;
        }

(* The handshake: the first frame must be a version-matching [Hello];
   the reply names the accounting id this connection is billed under. *)
let handshake t fd =
  match Wire.read_frame fd with
  | Ok (Wire.Hello { version; client }) when version = Wire.version ->
      let client =
        if client = "" then
          Fmt.str "client-%d" (Atomic.fetch_and_add t.next_client 1)
        else client
      in
      (match Wire.write_frame fd (Wire.Hello { version = Wire.version; client })
       with
      | Ok () -> Some client
      | Result.Error _ -> None)
  | Ok (Wire.Hello { version; _ }) ->
      ignore
        (Wire.write_frame fd
           (Wire.Error
              {
                id = None;
                message =
                  Fmt.str "protocol version %d not supported (server speaks %d)"
                    version Wire.version;
              }));
      None
  | Ok _ ->
      ignore
        (Wire.write_frame fd
           (Wire.Error { id = None; message = "expected a hello frame" }));
      None
  | Result.Error (Wire.Malformed msg) ->
      ignore
        (Wire.write_frame fd
           (Wire.Error { id = None; message = "bad hello: " ^ msg }));
      None
  | Result.Error _ -> None

let client_loop t fd =
  match handshake t fd with
  | None -> ()
  | Some client ->
      Log.info (fun m -> m "client %s connected" client);
      let rec loop () =
        match Wire.read_frame fd with
        | Ok (Wire.Request { id; line }) -> reply (handle_request t ~client ~id line)
        | Ok (Wire.Stats _) -> reply (Wire.Stats { body = stats_json t })
        | Ok (Wire.Hello _) ->
            reply (Wire.Error { id = None; message = "unexpected hello" })
        | Ok (Wire.Response _ | Wire.Error _) ->
            reply
              (Wire.Error
                 { id = None; message = "unexpected server-to-client frame" })
        | Result.Error (Wire.Malformed msg) ->
            (* framing intact: answer and keep the connection *)
            reply (Wire.Error { id = None; message = msg })
        | Result.Error (Wire.Oversized n) ->
            (* framing lost: best-effort error, then close *)
            ignore
              (Wire.write_frame fd
                 (Wire.Error
                    {
                      id = None;
                      message =
                        Fmt.str "frame of %d bytes exceeds the %d-byte bound" n
                          Wire.max_frame_bytes;
                    }))
        | Result.Error (Wire.Closed | Wire.Truncated) -> ()
      and reply frame =
        match Wire.write_frame fd frame with
        | Ok () -> loop ()
        | Result.Error _ -> () (* peer vanished mid-write *)
      in
      (try loop ()
       with e ->
         (* nothing a client does may poison the session or the server *)
         Log.warn (fun m ->
             m "client %s handler error: %s" client (Printexc.to_string e)));
      Log.info (fun m -> m "client %s disconnected" client)

let remove_client t fd =
  Mutex.protect t.lock (fun () ->
      t.clients <- List.filter (fun (fd', _) -> fd' != fd) t.clients;
      Obs.Metrics.set_gauge g_clients (float (List.length t.clients)))

let client_thread t fd =
  Fun.protect
    ~finally:(fun () ->
      remove_client t fd;
      try Unix.close fd with Unix.Unix_error _ -> ())
    (fun () -> client_loop t fd)

let rec accept_loop t =
  match Unix.accept t.sock with
  | fd, _peer ->
      if Atomic.get t.stopping then (
        (try Unix.close fd with Unix.Unix_error _ -> ());
        ())
      else begin
        let th = Thread.create (client_thread t) fd in
        Mutex.protect t.lock (fun () ->
            t.clients <- (fd, th) :: t.clients;
            Obs.Metrics.set_gauge g_clients (float (List.length t.clients)));
        accept_loop t
      end
  | exception Unix.Unix_error ((Unix.EBADF | Unix.EINVAL), _, _) ->
      () (* listener closed by [stop] *)
  | exception Unix.Unix_error (Unix.ECONNABORTED, _, _) -> accept_loop t
  | exception Unix.Unix_error (Unix.EINTR, _, _) -> accept_loop t
  | exception Unix.Unix_error (_, _, _) when Atomic.get t.stopping ->
      () (* listener shut down by [stop]; exact errno is platform-dependent *)

(* ------------------------------------------------------------------ *)
(* Lifecycle                                                           *)
(* ------------------------------------------------------------------ *)

let start ?(admission = Admission.unlimited ()) ?(backlog = 16) ~session addr =
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
   with Invalid_argument _ -> ());
  let domain =
    match addr with Unix.ADDR_UNIX _ -> Unix.PF_UNIX | Unix.ADDR_INET _ -> Unix.PF_INET
  in
  let unix_path =
    match addr with Unix.ADDR_UNIX p -> Some p | Unix.ADDR_INET _ -> None
  in
  (* a stale socket file from a previous run must not fail the bind *)
  Option.iter
    (fun p ->
      match (Unix.lstat p).Unix.st_kind with
      | Unix.S_SOCK -> ( try Unix.unlink p with Unix.Unix_error _ -> ())
      | _ -> ()
      | exception Unix.Unix_error _ -> ())
    unix_path;
  let sock = Unix.socket domain Unix.SOCK_STREAM 0 in
  match
    (match addr with
    | Unix.ADDR_INET _ -> Unix.setsockopt sock Unix.SO_REUSEADDR true
    | Unix.ADDR_UNIX _ -> ());
    Unix.bind sock addr;
    Unix.listen sock backlog
  with
  | exception Unix.Unix_error (e, _, _) ->
      (try Unix.close sock with Unix.Unix_error _ -> ());
      Result.Error
        (Fmt.str "cannot listen on %s: %s"
           (match addr with
           | Unix.ADDR_UNIX p -> p
           | Unix.ADDR_INET (a, p) ->
               Fmt.str "%s:%d" (Unix.string_of_inet_addr a) p)
           (Unix.error_message e))
  | () ->
      let t =
        {
          session;
          admission;
          sock;
          bound = Unix.getsockname sock;
          unix_path;
          stopping = Atomic.make false;
          lock = Mutex.create ();
          clients = [];
          accept_thread = None;
          next_client = Atomic.make 1;
        }
      in
      t.accept_thread <- Some (Thread.create accept_loop t);
      Ok t

let addr t = t.bound

let stop t =
  if not (Atomic.exchange t.stopping true) then begin
    (* closing the listener does not wake a thread blocked in accept(2)
       on Linux, and shutdown on a listening TCP socket is ENOTCONN —
       so poke the listener with a throwaway connection, which the
       accept loop discards once it observes the stop flag *)
    (let domain =
       match t.bound with
       | Unix.ADDR_UNIX _ -> Unix.PF_UNIX
       | Unix.ADDR_INET _ -> Unix.PF_INET
     in
     match Unix.socket domain Unix.SOCK_STREAM 0 with
     | fd ->
         (try Unix.connect fd t.bound with Unix.Unix_error _ -> ());
         (try Unix.close fd with Unix.Unix_error _ -> ())
     | exception Unix.Unix_error _ -> ());
    (try Unix.shutdown t.sock Unix.SHUTDOWN_ALL with Unix.Unix_error _ -> ());
    (try Unix.close t.sock with Unix.Unix_error _ -> ());
    Option.iter Thread.join t.accept_thread;
    let clients = Mutex.protect t.lock (fun () -> t.clients) in
    List.iter
      (fun (fd, _) ->
        try Unix.shutdown fd Unix.SHUTDOWN_ALL with Unix.Unix_error _ -> ())
      clients;
    List.iter (fun (_, th) -> Thread.join th) clients;
    Option.iter
      (fun p -> try Unix.unlink p with Unix.Unix_error _ | Sys_error _ -> ())
      t.unix_path
  end
