(* The batch-serving session. See session.mli and docs/SERVING.md. *)

open An5d_core

let src_log = Logs.Src.create "an5d.serve" ~doc:"AN5D batch serving session"

module Log = (val Logs.src_log src_log : Logs.LOG)

type config = {
  domains : int;
  queue_capacity : int;
  default_deadline : float option;
  job_capacity : int;
  job_ttl : float option;
  tune_capacity : int;
  tune_ttl : float option;
  outcome_capacity : int;
  outcome_ttl : float option;
  clock : unit -> float;
  workers : Workers.t option;
}

let default_config =
  {
    domains = 1;
    queue_capacity = 64;
    default_deadline = None;
    job_capacity = 64;
    job_ttl = None;
    tune_capacity = 64;
    tune_ttl = None;
    outcome_capacity = 64;
    outcome_ttl = None;
    clock = Unix.gettimeofday;
    workers = None;
  }

type served = Cold | Warm | Coalesced

type shed = Overload | Deadline_exceeded

type payload =
  | Compiled of { job : Framework.job; cuda : string }
  | Simulated of { outcome : Framework.outcome; config : Config.t }
  | Tuned of Model.Tuner.result

type status =
  | Done of payload
  | Degraded of payload * shed
  | Cancelled
  | Failed of string

type response = {
  id : string option;
  status : status;
  served : served;
  latency : float;
}

type t = {
  cfg : config;
  pool : Gpu.Pool.t option;
  jobs : Framework.job Cache.t;
  tunes : Model.Tuner.result Cache.t;
  outcomes : Framework.outcome Cache.t;
  winners : (string, string * Config.t) Hashtbl.t;
      (** tune-transfer registry: {!Request.transfer_key} to the
          (device name, winning config) of the last full tune, so a
          tune of the same stencil on a {e different} device seeds its
          search from this winner's neighborhood *)
  winners_lock : Mutex.t;
  cancelled_ids : (string, unit) Hashtbl.t;
  cancel_lock : Mutex.t;
  batch_lock : Mutex.t;  (** one batch on the pool at a time *)
  total : int Atomic.t;
  degraded : int Atomic.t;
  cancelled : int Atomic.t;
  failed : int Atomic.t;
}

(* Observability: the serving taxonomy of docs/OBSERVABILITY.md. *)
let g_queue_depth = Obs.Metrics.gauge "serve_queue_depth"

let m_requests = Obs.Metrics.counter "serve_requests_total"

let m_degraded = Obs.Metrics.counter "serve_requests_degraded"

let m_cancelled = Obs.Metrics.counter "serve_requests_cancelled"

let m_failed = Obs.Metrics.counter "serve_requests_failed"

let h_latency = Obs.Metrics.histogram "serve_request_latency_us"

let create ?(config = default_config) () =
  {
    cfg = config;
    pool =
      (if config.domains > 1 then Some (Gpu.Pool.create ~domains:config.domains ())
       else None);
    jobs =
      Cache.create ?ttl:config.job_ttl ~clock:config.clock
        ~capacity:config.job_capacity ~name:"job" ();
    tunes =
      Cache.create ?ttl:config.tune_ttl ~clock:config.clock
        ~capacity:config.tune_capacity ~name:"tune" ();
    outcomes =
      Cache.create ?ttl:config.outcome_ttl ~clock:config.clock
        ~capacity:config.outcome_capacity ~name:"outcome" ();
    winners = Hashtbl.create 16;
    winners_lock = Mutex.create ();
    cancelled_ids = Hashtbl.create 16;
    cancel_lock = Mutex.create ();
    batch_lock = Mutex.create ();
    total = Atomic.make 0;
    degraded = Atomic.make 0;
    cancelled = Atomic.make 0;
    failed = Atomic.make 0;
  }

let cancel t id =
  Mutex.protect t.cancel_lock (fun () -> Hashtbl.replace t.cancelled_ids id ())

let is_cancelled t = function
  | None -> false
  | Some id -> Mutex.protect t.cancel_lock (fun () -> Hashtbl.mem t.cancelled_ids id)

let served_of_cache = function
  | Cache.Hit -> Warm
  | Cache.Miss -> Cold
  | Cache.Coalesced -> Coalesced

(* ------------------------------------------------------------------ *)
(* Request execution                                                   *)
(* ------------------------------------------------------------------ *)

let job_for t (spec : Request.spec) =
  Cache.find_or_compute t.jobs ~key:(Request.spec_key spec) (fun () ->
      Framework.compile ?dims:spec.Request.dims ?prec:spec.Request.prec
        ~config:spec.Request.config spec.Request.source)

(* Requests execute sequentially within their pool lane: the lane IS
   the parallelism, so nested [domains] are forced to 1. [shards]
   passes through untouched — a sharded request keeps its decomposition
   (the cache key includes it) but its shards advance sequentially
   inside the lane, which is bit-identical by the shard differential. *)
let lane_run run = Run_config.with_domains 1 run

let do_compile t spec =
  let job, c = job_for t spec in
  (Compiled { job; cuda = Framework.cuda_source job }, served_of_cache c)

let do_simulate t req (spec : Request.spec) ~device ~steps ~seed ~run =
  let key = Request.key req in
  let outcome, c =
    Cache.find_or_compute t.outcomes ~key (fun () ->
        let job, _ = job_for t spec in
        let run = lane_run run in
        (* Sharded requests asking for process-level placement fan out
           across the worker registry when one is configured; the
           registry's fallback guarantees a bit-identical in-process
           retry on any worker failure, so routing never changes the
           served bits, only where they were computed. *)
        match t.cfg.workers with
        | Some reg
          when run.Run_config.workers > 1 && run.Run_config.shards > 1 ->
            Workers.simulate reg ~spec ~job ~device ~steps ~seed ~run
        | _ ->
            let grid =
              Stencil.Grid.init_random ~prec:job.Framework.prec ~seed
                job.Framework.dims
            in
            Framework.simulate_cfg ~cfg:run ~device ~steps job grid)
  in
  (Simulated { outcome; config = spec.Request.config }, served_of_cache c)

(* Cross-device tune transfer (docs/SERVING.md §transfer): a tune miss
   first consults the winners registry under the request's
   device-agnostic transfer key; a winner recorded by a *different*
   device seeds the tuner, restricting the ranked space to the winner's
   neighborhood (<= half the full space — the pruning-rate win
   bench/exp_serve.ml gates). Every full tune records its winner. *)
let do_tune t req ~pattern ~device ~prec ~dims ~steps ~k =
  let tkey = Request.transfer_key req in
  let seed_config =
    match tkey with
    | None -> None
    | Some tk ->
        Mutex.protect t.winners_lock (fun () ->
            match Hashtbl.find_opt t.winners tk with
            | Some (dev_name, cfg) when dev_name <> device.Gpu.Device.name ->
                Some cfg
            | Some _ | None -> None)
  in
  let result, c =
    Cache.find_or_compute t.tunes ~key:(Request.key req) (fun () ->
        let r =
          Model.Tuner.tune_cfg ?seed_config ~k device ~prec pattern
            ~dims_sizes:dims ~steps
        in
        Option.iter
          (fun tk ->
            Mutex.protect t.winners_lock (fun () ->
                Hashtbl.replace t.winners tk
                  (device.Gpu.Device.name, r.Model.Tuner.best)))
          tkey;
        r)
  in
  (Tuned result, served_of_cache c)

(* Degraded service (§overload/deadline in docs/SERVING.md): a direct
   low-degree [bt = 1] run — the cheapest correct answer the session
   can produce. Simulation skips verification; tuning skips the ranked
   search and measures the single fallback configuration. Degraded
   runs bypass the caches so shed traffic cannot evict tuned-for
   entries. *)
let fallback_config (base : Config.t) = { base with Config.bt = 1; hs = None }

let do_compile_degraded t spec =
  (* compiling has no cheaper fallback; serve it as-is *)
  fst (do_compile t spec)

let do_simulate_degraded _t (spec : Request.spec) ~device ~steps ~seed ~run =
  let config = fallback_config spec.Request.config in
  let job =
    Framework.compile ?dims:spec.Request.dims ?prec:spec.Request.prec ~config
      spec.Request.source
  in
  let grid =
    Stencil.Grid.init_random ~prec:job.Framework.prec ~seed job.Framework.dims
  in
  let cfg =
    lane_run run |> Run_config.with_verify false |> Run_config.with_mode Direct
  in
  let outcome = Framework.simulate_cfg ~cfg ~device ~steps job grid in
  Simulated { outcome; config }

let do_tune_degraded _t ~pattern ~device ~prec ~dims ~steps =
  let nb = pattern.Stencil.Pattern.dims in
  let config =
    Config.make ~bt:1 ~bs:(List.hd (Model.Tuner.bs_choices nb)) ()
  in
  let em = Execmodel.make pattern config dims in
  let reg_limit, m = Model.Measure.with_reg_limit_search device ~prec em ~steps in
  let predicted = Model.Predict.evaluate device ~prec em ~steps in
  Tuned
    {
      Model.Tuner.best = { config with Config.reg_limit };
      tuned = m;
      model_gflops = predicted.Model.Predict.gflops;
      explored = 1;
      pruned = 0;
      top = [];
      verify = None;
      seeded = None;
    }

let execute t req =
  match req.Request.body with
  | Request.Compile spec -> do_compile t spec
  | Request.Simulate { spec; device; steps; seed; run } ->
      do_simulate t req spec ~device ~steps ~seed ~run
  | Request.Tune { pattern; device; prec; dims; steps; k; _ } ->
      do_tune t req ~pattern ~device ~prec ~dims ~steps ~k

let execute_degraded t req =
  match req.Request.body with
  | Request.Compile spec -> do_compile_degraded t spec
  | Request.Simulate { spec; device; steps; seed; run } ->
      do_simulate_degraded t spec ~device ~steps ~seed ~run
  | Request.Tune { pattern; device; prec; dims; steps; _ } ->
      do_tune_degraded t ~pattern ~device ~prec ~dims ~steps

let shed_to_string = function
  | Overload -> "overload"
  | Deadline_exceeded -> "deadline"

let process_one t ~enqueued ~overloaded req =
  Atomic.incr t.total;
  Obs.Metrics.incr m_requests;
  Obs.Trace.with_span "serve.request"
    ~attrs:[ ("kind", Obs.Trace.Str (Request.kind req)) ]
  @@ fun () ->
  let finish status served =
    let latency = t.cfg.clock () -. enqueued in
    Obs.Metrics.observe h_latency (latency *. 1e6);
    { id = req.Request.id; status; served; latency }
  in
  if is_cancelled t req.Request.id then begin
    Atomic.incr t.cancelled;
    Obs.Metrics.incr m_cancelled;
    Obs.Trace.add_attrs [ ("outcome", Obs.Trace.Str "cancelled") ];
    finish Cancelled Cold
  end
  else begin
    let deadline =
      match req.Request.deadline with
      | Some _ as d -> d
      | None -> t.cfg.default_deadline
    in
    let late =
      match deadline with
      | Some d -> t.cfg.clock () -. enqueued > d
      | None -> false
    in
    let shed =
      if overloaded then Some Overload
      else if late then Some Deadline_exceeded
      else None
    in
    match shed with
    | Some reason -> (
        Atomic.incr t.degraded;
        Obs.Metrics.incr m_degraded;
        Obs.Trace.add_attrs
          [ ("outcome", Obs.Trace.Str ("degraded:" ^ shed_to_string reason)) ];
        Log.info (fun m ->
            m "shedding %a to bt=1 (%s)" Request.pp req (shed_to_string reason));
        match execute_degraded t req with
        | payload -> finish (Degraded (payload, reason)) Cold
        | exception e ->
            Atomic.incr t.failed;
            Obs.Metrics.incr m_failed;
            finish (Failed (Printexc.to_string e)) Cold)
    | None -> (
        match execute t req with
        | payload, served ->
            Obs.Trace.add_attrs [ ("outcome", Obs.Trace.Str "ok") ];
            finish (Done payload) served
        | exception Framework.Compile_error msg ->
            Atomic.incr t.failed;
            Obs.Metrics.incr m_failed;
            Obs.Trace.add_attrs [ ("outcome", Obs.Trace.Str "failed") ];
            finish (Failed msg) Cold
        | exception e ->
            Atomic.incr t.failed;
            Obs.Metrics.incr m_failed;
            Obs.Trace.add_attrs [ ("outcome", Obs.Trace.Str "failed") ];
            finish (Failed (Printexc.to_string e)) Cold)
  end

(* ------------------------------------------------------------------ *)
(* Batch scheduling over the pool                                      *)
(* ------------------------------------------------------------------ *)

let submit_batch t reqs =
  Mutex.protect t.batch_lock @@ fun () ->
  let arr = Array.of_list reqs in
  let n = Array.length arr in
  if n = 0 then []
  else begin
    let enqueued = t.cfg.clock () in
    let results = Array.make n None in
    let pending = Atomic.make n in
    Obs.Metrics.set_gauge g_queue_depth (float n);
    Obs.Trace.with_span "serve.batch" ~attrs:[ ("requests", Obs.Trace.Int n) ]
      (fun () ->
        let process i =
          let overloaded = i >= t.cfg.queue_capacity in
          results.(i) <- Some (process_one t ~enqueued ~overloaded arr.(i));
          Obs.Metrics.set_gauge g_queue_depth
            (float (Atomic.fetch_and_add pending (-1) - 1))
        in
        match t.pool with
        | Some pool -> Gpu.Pool.run pool ~n (fun ~lane:_ i -> process i)
        | None ->
            for i = 0 to n - 1 do
              process i
            done);
    Array.to_list (Array.map Option.get results)
  end

let submit t req = List.hd (submit_batch t [ req ])

(* Admission-control shed (the {!Server}'s token bucket): the request
   is still served — through the degraded [bt = 1] path, reported
   [Degraded (_, Overload)] — never dropped. *)
let submit_shed t req =
  Mutex.protect t.batch_lock @@ fun () ->
  process_one t ~enqueued:(t.cfg.clock ()) ~overloaded:true req

(* ------------------------------------------------------------------ *)
(* Cache persistence                                                   *)
(* ------------------------------------------------------------------ *)

(* The marshalled dump payload: every cached value wrapped as a
   digest-checked [Persist.entry], plus the transfer-winner registry
   (plain data). All three cache value types — [Framework.job]
   (detection AST + config), [Model.Tuner.result] (measurements,
   predictions, configs) and [Framework.outcome] (Bigarray-backed grid,
   counters, launch stats) — are closure-free, so [Marshal] round-trips
   them bit-identically. *)
type dump_payload = {
  d_jobs : Persist.entry list;
  d_tunes : Persist.entry list;
  d_outcomes : Persist.entry list;
  d_winners : (string * (string * Config.t)) list;
}

let h_persist_dump = Obs.Metrics.histogram "cache_persist_dump_us"

let h_persist_load = Obs.Metrics.histogram "cache_persist_load_us"

let dump t ~path =
  let t0 = Unix.gettimeofday () in
  let entries cache =
    List.map (fun (key, v) -> Persist.entry_of ~key v) (Cache.export cache)
  in
  let payload =
    {
      d_jobs = entries t.jobs;
      d_tunes = entries t.tunes;
      d_outcomes = entries t.outcomes;
      d_winners =
        Mutex.protect t.winners_lock (fun () ->
            Hashtbl.fold (fun k v acc -> (k, v) :: acc) t.winners []);
    }
  in
  let n =
    List.length payload.d_jobs + List.length payload.d_tunes
    + List.length payload.d_outcomes
  in
  let r = Persist.write ~path ~schema:Request.key_schema_digest payload in
  Obs.Metrics.observe h_persist_dump ((Unix.gettimeofday () -. t0) *. 1e6);
  (match r with
  | Ok () ->
      Log.info (fun m ->
          m "dumped %d cache entries and %d transfer winners to %s" n
            (List.length payload.d_winners) path)
  | Error msg -> Log.warn (fun m -> m "cache dump to %s failed: %s" path msg));
  Result.map (fun () -> n) r

let load t ~path =
  let t0 = Unix.gettimeofday () in
  let finish r =
    Obs.Metrics.observe h_persist_load ((Unix.gettimeofday () -. t0) *. 1e6);
    (match r with
    | Ok n -> Log.info (fun m -> m "loaded %d cache entries from %s" n path)
    | Error msg -> Log.warn (fun m -> m "refusing cache dump %s: %s" path msg));
    r
  in
  match Persist.read ~path ~schema:Request.key_schema_digest with
  | Error msg -> finish (Error msg)
  | Ok (payload : dump_payload) -> (
      let unpack entries =
        List.fold_left
          (fun acc (e : Persist.entry) ->
            match acc with
            | Error _ -> acc
            | Ok vs -> (
                match Persist.entry_value e with
                | Ok v -> Ok ((e.Persist.key, v) :: vs)
                | Error _ as err -> err))
          (Ok []) entries
        |> Result.map List.rev
      in
      match
        (unpack payload.d_jobs, unpack payload.d_tunes, unpack payload.d_outcomes)
      with
      | Ok js, Ok ts, Ok os ->
          Cache.import t.jobs js;
          Cache.import t.tunes ts;
          Cache.import t.outcomes os;
          Mutex.protect t.winners_lock (fun () ->
              List.iter
                (fun (k, v) -> Hashtbl.replace t.winners k v)
                payload.d_winners);
          finish (Ok (List.length js + List.length ts + List.length os))
      | Error msg, _, _ | _, Error msg, _ | _, _, Error msg ->
          finish (Error msg))

type stats = {
  total : int;
  degraded : int;
  cancelled : int;
  failed : int;
  winners : int;
  jobs : Cache.stats;
  tunes : Cache.stats;
  outcomes : Cache.stats;
}

let stats (t : t) =
  {
    total = Atomic.get t.total;
    degraded = Atomic.get t.degraded;
    cancelled = Atomic.get t.cancelled;
    failed = Atomic.get t.failed;
    winners = Mutex.protect t.winners_lock (fun () -> Hashtbl.length t.winners);
    jobs = Cache.stats t.jobs;
    tunes = Cache.stats t.tunes;
    outcomes = Cache.stats t.outcomes;
  }

(* Hit ratio over all lookups of a cache. Coalesced lookups were served
   without recomputation but not from a ready entry, so they count in
   the denominator only — the ratio reads "fraction of lookups answered
   instantly". *)
let hit_ratio (s : Cache.stats) =
  let lookups = s.Cache.hits + s.Cache.misses + s.Cache.coalesced in
  if lookups = 0 then 0.0 else 100.0 *. float s.Cache.hits /. float lookups

let pp_cache_stats ppf (name, (s : Cache.stats)) =
  Fmt.pf ppf
    "%s cache: %d hit, %d miss, %d coalesced, %d evicted, %d expired, %d live, \
     %.1f%% hit-ratio"
    name s.Cache.hits s.Cache.misses s.Cache.coalesced s.Cache.evictions
    s.Cache.expired s.Cache.size (hit_ratio s)

let pp_stats ppf s =
  Fmt.pf ppf
    "@[<v>%d requests (%d degraded, %d cancelled, %d failed), %d transfer \
     winners@,%a@,%a@,%a@]"
    s.total s.degraded s.cancelled s.failed s.winners pp_cache_stats
    ("job", s.jobs) pp_cache_stats ("tune", s.tunes) pp_cache_stats
    ("outcome", s.outcomes)

let shutdown t = Option.iter Gpu.Pool.shutdown t.pool
