(** Keyed LRU+TTL cache with in-flight request coalescing — the
    building block of the serving layer's compile, tune and outcome
    caches.

    Keys are the stable strings produced by the request layer (source
    digest + config/dims/precision s-expressions + the semantic
    {!An5d_core.Run_config.cache_key}), so two requests share an entry
    exactly when they are proven to produce bit-identical results.

    Concurrency: safe across OCaml domains (the {!Gpu.Pool} lanes of a
    serving session). {!find_or_compute} coalesces concurrent misses of
    one key: the first caller computes while the others block on a
    condition variable and are handed the finished value — N identical
    in-flight requests trigger exactly one computation. A computation
    that raises wakes the waiters, and the first of them retries (so
    one poisoned request cannot wedge the key).

    Instrumented: each cache interns
    [serve_<name>_cache_{hits,misses,coalesced,evictions,expired}]
    counters in the {!Obs.Metrics} registry. *)

type 'v t

val create :
  ?ttl:float -> ?clock:(unit -> float) -> ?capacity:int -> name:string -> unit -> 'v t
(** [create ~name ()] makes an empty cache. [capacity] (default 64)
    bounds the number of ready entries — inserting beyond it evicts the
    least-recently-used entry. [ttl] (default: none) expires entries
    that many seconds after insertion, measured by [clock] (default
    [Unix.gettimeofday]; injectable for tests). *)

(** How a lookup was served: [Hit] — entry was ready; [Miss] — this
    caller computed it; [Coalesced] — another in-flight caller computed
    it while this one waited. *)
type served = Hit | Miss | Coalesced

val find_or_compute : 'v t -> key:string -> (unit -> 'v) -> 'v * served
(** Return the cached value for [key], computing and inserting it on a
    miss. Expired entries count as misses. The exception of a failed
    computation propagates to the computing caller; waiting callers
    retry the computation themselves. *)

val find : 'v t -> key:string -> 'v option
(** Peek without computing or coalescing (still refreshes LRU order and
    counts a hit/miss; an in-flight entry reads as [None]). *)

type stats = {
  hits : int;
  misses : int;
  coalesced : int;
  evictions : int;
  expired : int;
  size : int;  (** ready entries currently cached *)
}

val stats : 'v t -> stats

val export : 'v t -> (string * 'v) list
(** Snapshot the live (ready, unexpired) entries, least recently used
    first — the order {!import} wants so a replay reconstructs the LRU
    ranking. In-flight markers are skipped. *)

val import : 'v t -> (string * 'v) list -> unit
(** Insert entries as if each had just been computed (fresh TTL, most
    recently used last; capacity is enforced, evicting as usual).
    Counts neither hits nor misses — a warm restart must not skew the
    ratio statistics. Used by {!Session.load}. *)

val clear : 'v t -> unit
(** Drop all ready entries (in-flight computations finish and insert
    normally). Statistics are kept. *)
