(* Versioned, digest-checked cache-dump envelope. See persist.mli. *)

let magic = "AN5D-CACHE"

let format_version = 1

type entry = { key : string; digest : string; bytes : string }

let entry_of ~key v =
  let bytes = Marshal.to_string v [] in
  { key; digest = Digest.to_hex (Digest.string bytes); bytes }

let entry_value e =
  if Digest.to_hex (Digest.string e.bytes) <> e.digest then
    Error (Printf.sprintf "entry %S failed its digest check" e.key)
  else Ok (Marshal.from_string e.bytes 0)

let header ~schema ~payload_digest =
  Printf.sprintf "%s\n%d\n%s\n%s\n" magic format_version schema payload_digest

let write ~path ~schema value =
  let payload = Marshal.to_string value [] in
  let payload_digest = Digest.to_hex (Digest.string payload) in
  let tmp = path ^ ".tmp" in
  match
    Out_channel.with_open_bin tmp (fun oc ->
        Out_channel.output_string oc (header ~schema ~payload_digest);
        Out_channel.output_string oc payload);
    Sys.rename tmp path
  with
  | () -> Ok ()
  | exception Sys_error msg -> Error msg

(* Split the first four newline-terminated header lines off the raw
   file contents; everything after the fourth '\n' is payload. *)
let split_header raw =
  let rec find_nl from remaining =
    if remaining = 0 then Some from
    else
      match String.index_from_opt raw from '\n' with
      | Some i -> find_nl (i + 1) (remaining - 1)
      | None -> None
  in
  match find_nl 0 4 with
  | None -> None
  | Some body_start ->
      let head = String.sub raw 0 body_start in
      let lines = String.split_on_char '\n' head in
      let payload =
        String.sub raw body_start (String.length raw - body_start)
      in
      (match lines with
      | [ l1; l2; l3; l4; "" ] -> Some ((l1, l2, l3, l4), payload)
      | _ -> None)

let read ~path ~schema =
  match In_channel.with_open_bin path In_channel.input_all with
  | exception Sys_error msg -> Error msg
  | raw -> (
      match split_header raw with
      | None -> Error (Printf.sprintf "%s: not an an5d cache dump" path)
      | Some ((l1, l2, l3, l4), payload) ->
          if l1 <> magic then
            Error (Printf.sprintf "%s: bad magic %S" path l1)
          else if l2 <> string_of_int format_version then
            Error
              (Printf.sprintf
                 "%s: dump format version %s, this build reads %d" path l2
                 format_version)
          else if l3 <> schema then
            Error
              (Printf.sprintf
                 "%s: stale cache-key schema (dump %s, this build %s) — \
                  refusing to load"
                 path l3 schema)
          else if l4 <> Digest.to_hex (Digest.string payload) then
            Error (Printf.sprintf "%s: payload failed its digest check" path)
          else Ok (Marshal.from_string payload 0))
