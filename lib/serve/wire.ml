(* Framed wire protocol: length-prefixed JSON frames. See wire.mli. *)

type json =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | Arr of json list
  | Obj of (string * json) list

(* ------------------------------------------------------------------ *)
(* JSON rendering                                                      *)
(* ------------------------------------------------------------------ *)

let escape_to buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let rec render_to buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float f ->
      if Float.is_finite f then Buffer.add_string buf (Printf.sprintf "%.17g" f)
      else Buffer.add_string buf "null"
  | Str s -> escape_to buf s
  | Arr xs ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i x ->
          if i > 0 then Buffer.add_char buf ',';
          render_to buf x)
        xs;
      Buffer.add_char buf ']'
  | Obj kvs ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char buf ',';
          escape_to buf k;
          Buffer.add_char buf ':';
          render_to buf v)
        kvs;
      Buffer.add_char buf '}'

let json_to_string j =
  let buf = Buffer.create 256 in
  render_to buf j;
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* JSON parsing — total: no exception escapes, nesting depth bounded   *)
(* ------------------------------------------------------------------ *)

exception Parse of string

let max_depth = 64

let json_of_string s =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Parse (Printf.sprintf "%s at byte %d" msg !pos)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | _ -> fail (Printf.sprintf "expected '%c'" c)
  in
  let skip_ws () =
    while
      !pos < n && (match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false)
    do
      advance ()
    done
  in
  let literal word v =
    let l = String.length word in
    if !pos + l <= n && String.sub s !pos l = word then begin
      pos := !pos + l;
      v
    end
    else fail "invalid literal"
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      if !pos >= n then fail "unterminated string"
      else
        match s.[!pos] with
        | '"' -> advance ()
        | '\\' ->
            advance ();
            (if !pos >= n then fail "unterminated escape"
             else
               match s.[!pos] with
               | '"' -> Buffer.add_char buf '"'; advance ()
               | '\\' -> Buffer.add_char buf '\\'; advance ()
               | '/' -> Buffer.add_char buf '/'; advance ()
               | 'b' -> Buffer.add_char buf '\b'; advance ()
               | 'f' -> Buffer.add_char buf '\012'; advance ()
               | 'n' -> Buffer.add_char buf '\n'; advance ()
               | 'r' -> Buffer.add_char buf '\r'; advance ()
               | 't' -> Buffer.add_char buf '\t'; advance ()
               | 'u' ->
                   advance ();
                   if !pos + 4 > n then fail "truncated \\u escape";
                   let hex = String.sub s !pos 4 in
                   let code =
                     match int_of_string_opt ("0x" ^ hex) with
                     | Some c -> c
                     | None -> fail "bad \\u escape"
                   in
                   pos := !pos + 4;
                   (* encode the code point as UTF-8 (surrogates kept
                      as-is in their raw 3-byte form — round-tripping
                      arbitrary escapes is not a wire requirement) *)
                   if code < 0x80 then Buffer.add_char buf (Char.chr code)
                   else if code < 0x800 then begin
                     Buffer.add_char buf (Char.chr (0xC0 lor (code lsr 6)));
                     Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
                   end
                   else begin
                     Buffer.add_char buf (Char.chr (0xE0 lor (code lsr 12)));
                     Buffer.add_char buf
                       (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
                     Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
                   end
               | c -> fail (Printf.sprintf "bad escape '\\%c'" c));
            go ()
        | c ->
            Buffer.add_char buf c;
            advance ();
            go ()
    in
    go ();
    Buffer.contents buf
  in
  let parse_number () =
    let start = !pos in
    let is_num_char c =
      match c with
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while !pos < n && is_num_char s.[!pos] do
      advance ()
    done;
    let tok = String.sub s start (!pos - start) in
    match int_of_string_opt tok with
    | Some i -> Int i
    | None -> (
        match float_of_string_opt tok with
        | Some f -> Float f
        | None -> fail (Printf.sprintf "bad number %S" tok))
  in
  let rec parse_value depth =
    if depth > max_depth then fail "nesting too deep";
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some 'n' -> literal "null" Null
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some '"' -> Str (parse_string ())
    | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then begin
          advance ();
          Arr []
        end
        else begin
          let items = ref [] in
          let rec items_loop () =
            items := parse_value (depth + 1) :: !items;
            skip_ws ();
            match peek () with
            | Some ',' -> advance (); items_loop ()
            | Some ']' -> advance ()
            | _ -> fail "expected ',' or ']'"
          in
          items_loop ();
          Arr (List.rev !items)
        end
    | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then begin
          advance ();
          Obj []
        end
        else begin
          let fields = ref [] in
          let rec fields_loop () =
            skip_ws ();
            let k = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value (depth + 1) in
            fields := (k, v) :: !fields;
            skip_ws ();
            match peek () with
            | Some ',' -> advance (); fields_loop ()
            | Some '}' -> advance ()
            | _ -> fail "expected ',' or '}'"
          in
          fields_loop ();
          Obj (List.rev !fields)
        end
    | Some ('-' | '0' .. '9') -> parse_number ()
    | Some c -> fail (Printf.sprintf "unexpected '%c'" c)
  in
  match
    let v = parse_value 0 in
    skip_ws ();
    if !pos <> n then fail "trailing bytes after value";
    v
  with
  | v -> Ok v
  | exception Parse msg -> Error msg
  | exception Stack_overflow -> Error "nesting too deep"

(* ------------------------------------------------------------------ *)
(* Frames                                                              *)
(* ------------------------------------------------------------------ *)

let version = 1

let max_frame_bytes = 4 * 1024 * 1024

type frame =
  | Hello of { version : int; client : string }
  | Request of { id : string option; line : string }
  | Response of {
      id : string option;
      status : string;
      served : string;
      latency : float;
      payload : json;
    }
  | Error of { id : string option; message : string }
  | Stats of { body : json }

let pp_frame ppf = function
  | Hello { version; client } -> Fmt.pf ppf "hello v%d client=%s" version client
  | Request { id; line } ->
      Fmt.pf ppf "request%a %s" Fmt.(option (any " id=" ++ string)) id line
  | Response { id; status; served; _ } ->
      Fmt.pf ppf "response%a %s %s" Fmt.(option (any " id=" ++ string)) id status served
  | Error { id; message } ->
      Fmt.pf ppf "error%a %s" Fmt.(option (any " id=" ++ string)) id message
  | Stats _ -> Fmt.pf ppf "stats"

let m_frames_in = Obs.Metrics.counter "wire_frames_in"

let m_frames_out = Obs.Metrics.counter "wire_frames_out"

let m_rejects = Obs.Metrics.counter "wire_rejects"

let opt_id = function None -> Null | Some id -> Str id

let encode_payload frame =
  let fields =
    match frame with
    | Hello { version; client } ->
        [ ("t", Str "hello"); ("version", Int version); ("client", Str client) ]
    | Request { id; line } ->
        [ ("t", Str "request"); ("id", opt_id id); ("line", Str line) ]
    | Response { id; status; served; latency; payload } ->
        [
          ("t", Str "response"); ("id", opt_id id); ("status", Str status);
          ("served", Str served); ("latency", Float latency);
          ("payload", payload);
        ]
    | Error { id; message } ->
        [ ("t", Str "error"); ("id", opt_id id); ("message", Str message) ]
    | Stats { body } -> [ ("t", Str "stats"); ("body", body) ]
  in
  json_to_string (Obj (("v", Int version) :: fields))

let field obj k = match obj with Obj kvs -> List.assoc_opt k kvs | _ -> None

let str_field obj k =
  match field obj k with Some (Str s) -> Some s | _ -> None

let id_field obj =
  match field obj "id" with Some (Str s) -> Some s | _ -> None

let num_field obj k =
  match field obj k with
  | Some (Float f) -> Some f
  | Some (Int i) -> Some (float_of_int i)
  | _ -> None

let decode_payload bytes =
  match json_of_string bytes with
  | Error msg -> Result.Error ("bad JSON: " ^ msg)
  | Ok obj -> (
      match field obj "v" with
      | Some (Int v) when v = version -> (
          match str_field obj "t" with
          | Some "hello" -> (
              match (field obj "version", str_field obj "client") with
              | Some (Int version), Some client -> Ok (Hello { version; client })
              | Some (Int version), None -> Ok (Hello { version; client = "" })
              | _ -> Result.Error "hello frame missing version")
          | Some "request" -> (
              match str_field obj "line" with
              | Some line -> Ok (Request { id = id_field obj; line })
              | None -> Result.Error "request frame missing line")
          | Some "response" -> (
              match (str_field obj "status", str_field obj "served") with
              | Some status, Some served ->
                  Ok
                    (Response
                       {
                         id = id_field obj;
                         status;
                         served;
                         latency =
                           Option.value (num_field obj "latency") ~default:0.0;
                         payload =
                           Option.value (field obj "payload") ~default:Null;
                       })
              | _ -> Result.Error "response frame missing status/served")
          | Some "error" -> (
              match str_field obj "message" with
              | Some message -> Ok (Error { id = id_field obj; message })
              | None -> Result.Error "error frame missing message")
          | Some "stats" ->
              Ok (Stats { body = Option.value (field obj "body") ~default:Null })
          | Some t -> Result.Error (Printf.sprintf "unknown frame type %S" t)
          | None -> Result.Error "frame missing type field")
      | Some (Int v) ->
          Result.Error
            (Printf.sprintf "protocol version mismatch: peer %d, this build %d" v
               version)
      | _ -> Result.Error "frame missing protocol version")

let encode frame =
  let payload = encode_payload frame in
  let len = String.length payload in
  if len > max_frame_bytes then
    invalid_arg
      (Printf.sprintf "Wire.encode: %d-byte payload exceeds the %d-byte frame bound"
         len max_frame_bytes);
  let b = Bytes.create (4 + len) in
  Bytes.set_uint8 b 0 ((len lsr 24) land 0xFF);
  Bytes.set_uint8 b 1 ((len lsr 16) land 0xFF);
  Bytes.set_uint8 b 2 ((len lsr 8) land 0xFF);
  Bytes.set_uint8 b 3 (len land 0xFF);
  Bytes.blit_string payload 0 b 4 len;
  Bytes.unsafe_to_string b

(* ------------------------------------------------------------------ *)
(* Descriptor IO                                                       *)
(* ------------------------------------------------------------------ *)

type read_error = Closed | Truncated | Oversized of int | Malformed of string

let read_error_to_string = function
  | Closed -> "connection closed"
  | Truncated -> "truncated frame"
  | Oversized n ->
      Printf.sprintf "oversized frame: %d bytes announced, bound is %d" n
        max_frame_bytes
  | Malformed msg -> msg

(* Exact [len]-byte read. [`Closed] only when EOF lands on a frame
   boundary (nothing read yet). *)
let read_exact fd buf len =
  let rec go off =
    if off = len then Ok ()
    else
      match Unix.read fd buf off (len - off) with
      | 0 -> if off = 0 then Result.Error Closed else Result.Error Truncated
      | n -> go (off + n)
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go off
      | exception Unix.Unix_error (_, _, _) ->
          if off = 0 then Result.Error Closed else Result.Error Truncated
  in
  go 0

let read_frame fd =
  let hdr = Bytes.create 4 in
  match read_exact fd hdr 4 with
  | Result.Error _ as e -> e
  | Ok () -> (
      let len =
        (Bytes.get_uint8 hdr 0 lsl 24)
        lor (Bytes.get_uint8 hdr 1 lsl 16)
        lor (Bytes.get_uint8 hdr 2 lsl 8)
        lor Bytes.get_uint8 hdr 3
      in
      if len > max_frame_bytes then begin
        Obs.Metrics.incr m_rejects;
        Result.Error (Oversized len)
      end
      else
        let payload = Bytes.create len in
        match read_exact fd payload len with
        | Result.Error Closed -> Result.Error Truncated
        | Result.Error _ as e -> e
        | Ok () -> (
            match decode_payload (Bytes.unsafe_to_string payload) with
            | Ok frame ->
                Obs.Metrics.incr m_frames_in;
                Ok frame
            | Result.Error msg ->
                Obs.Metrics.incr m_rejects;
                Result.Error (Malformed msg)))

let write_frame fd frame =
  let bytes = encode frame in
  let len = String.length bytes in
  let rec go off =
    if off = len then Ok ()
    else
      match Unix.write_substring fd bytes off (len - off) with
      | n -> go (off + n)
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go off
      | exception Unix.Unix_error (e, _, _) ->
          Result.Error (Unix.error_message e)
  in
  let r = go 0 in
  if Result.is_ok r then Obs.Metrics.incr m_frames_out;
  r
