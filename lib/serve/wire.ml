(* Framed wire protocol: length-prefixed JSON frames. See wire.mli. *)

type json = Json.t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | Arr of json list
  | Obj of (string * json) list

(* The codec itself lives in {!Json} — one total implementation shared
   with the worker task descriptors and the payload builders. *)
let json_to_string = Json.to_string

let json_of_string = Json.of_string

(* ------------------------------------------------------------------ *)
(* Frames                                                              *)
(* ------------------------------------------------------------------ *)

let version = 1

let max_frame_bytes = 4 * 1024 * 1024

type frame =
  | Hello of { version : int; client : string }
  | Request of { id : string option; line : string }
  | Response of {
      id : string option;
      status : string;
      served : string;
      latency : float;
      payload : json;
    }
  | Error of { id : string option; message : string }
  | Stats of { body : json }

let pp_frame ppf = function
  | Hello { version; client } -> Fmt.pf ppf "hello v%d client=%s" version client
  | Request { id; line } ->
      Fmt.pf ppf "request%a %s" Fmt.(option (any " id=" ++ string)) id line
  | Response { id; status; served; _ } ->
      Fmt.pf ppf "response%a %s %s" Fmt.(option (any " id=" ++ string)) id status served
  | Error { id; message } ->
      Fmt.pf ppf "error%a %s" Fmt.(option (any " id=" ++ string)) id message
  | Stats _ -> Fmt.pf ppf "stats"

let m_frames_in = Obs.Metrics.counter "wire_frames_in"

let m_frames_out = Obs.Metrics.counter "wire_frames_out"

let m_rejects = Obs.Metrics.counter "wire_rejects"

let opt_id = function None -> Null | Some id -> Str id

let encode_payload frame =
  let fields =
    match frame with
    | Hello { version; client } ->
        [ ("t", Str "hello"); ("version", Int version); ("client", Str client) ]
    | Request { id; line } ->
        [ ("t", Str "request"); ("id", opt_id id); ("line", Str line) ]
    | Response { id; status; served; latency; payload } ->
        [
          ("t", Str "response"); ("id", opt_id id); ("status", Str status);
          ("served", Str served); ("latency", Float latency);
          ("payload", payload);
        ]
    | Error { id; message } ->
        [ ("t", Str "error"); ("id", opt_id id); ("message", Str message) ]
    | Stats { body } -> [ ("t", Str "stats"); ("body", body) ]
  in
  json_to_string (Obj (("v", Int version) :: fields))

let field = Json.field

let str_field = Json.str_field

let num_field = Json.num_field

let id_field obj =
  match field obj "id" with Some (Str s) -> Some s | _ -> None

let decode_payload bytes =
  match json_of_string bytes with
  | Error msg -> Result.Error ("bad JSON: " ^ msg)
  | Ok obj -> (
      match field obj "v" with
      | Some (Int v) when v = version -> (
          match str_field obj "t" with
          | Some "hello" -> (
              match (field obj "version", str_field obj "client") with
              | Some (Int version), Some client -> Ok (Hello { version; client })
              | Some (Int version), None -> Ok (Hello { version; client = "" })
              | _ -> Result.Error "hello frame missing version")
          | Some "request" -> (
              match str_field obj "line" with
              | Some line -> Ok (Request { id = id_field obj; line })
              | None -> Result.Error "request frame missing line")
          | Some "response" -> (
              match (str_field obj "status", str_field obj "served") with
              | Some status, Some served ->
                  Ok
                    (Response
                       {
                         id = id_field obj;
                         status;
                         served;
                         latency =
                           Option.value (num_field obj "latency") ~default:0.0;
                         payload =
                           Option.value (field obj "payload") ~default:Null;
                       })
              | _ -> Result.Error "response frame missing status/served")
          | Some "error" -> (
              match str_field obj "message" with
              | Some message -> Ok (Error { id = id_field obj; message })
              | None -> Result.Error "error frame missing message")
          | Some "stats" ->
              Ok (Stats { body = Option.value (field obj "body") ~default:Null })
          | Some t -> Result.Error (Printf.sprintf "unknown frame type %S" t)
          | None -> Result.Error "frame missing type field")
      | Some (Int v) ->
          Result.Error
            (Printf.sprintf "protocol version mismatch: peer %d, this build %d" v
               version)
      | _ -> Result.Error "frame missing protocol version")

let encode frame =
  let payload = encode_payload frame in
  let len = String.length payload in
  if len > max_frame_bytes then
    invalid_arg
      (Printf.sprintf "Wire.encode: %d-byte payload exceeds the %d-byte frame bound"
         len max_frame_bytes);
  let b = Bytes.create (4 + len) in
  Bytes.set_uint8 b 0 ((len lsr 24) land 0xFF);
  Bytes.set_uint8 b 1 ((len lsr 16) land 0xFF);
  Bytes.set_uint8 b 2 ((len lsr 8) land 0xFF);
  Bytes.set_uint8 b 3 (len land 0xFF);
  Bytes.blit_string payload 0 b 4 len;
  Bytes.unsafe_to_string b

(* ------------------------------------------------------------------ *)
(* Descriptor IO                                                       *)
(* ------------------------------------------------------------------ *)

type read_error = Closed | Truncated | Oversized of int | Malformed of string

let read_error_to_string = function
  | Closed -> "connection closed"
  | Truncated -> "truncated frame"
  | Oversized n ->
      Printf.sprintf "oversized frame: %d bytes announced, bound is %d" n
        max_frame_bytes
  | Malformed msg -> msg

(* Exact [len]-byte read. [`Closed] only when EOF lands on a frame
   boundary (nothing read yet). *)
let read_exact fd buf len =
  let rec go off =
    if off = len then Ok ()
    else
      match Unix.read fd buf off (len - off) with
      | 0 -> if off = 0 then Result.Error Closed else Result.Error Truncated
      | n -> go (off + n)
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go off
      | exception Unix.Unix_error (_, _, _) ->
          if off = 0 then Result.Error Closed else Result.Error Truncated
  in
  go 0

let read_frame fd =
  let hdr = Bytes.create 4 in
  match read_exact fd hdr 4 with
  | Result.Error _ as e -> e
  | Ok () -> (
      let len =
        (Bytes.get_uint8 hdr 0 lsl 24)
        lor (Bytes.get_uint8 hdr 1 lsl 16)
        lor (Bytes.get_uint8 hdr 2 lsl 8)
        lor Bytes.get_uint8 hdr 3
      in
      if len > max_frame_bytes then begin
        Obs.Metrics.incr m_rejects;
        Result.Error (Oversized len)
      end
      else
        let payload = Bytes.create len in
        match read_exact fd payload len with
        | Result.Error Closed -> Result.Error Truncated
        | Result.Error _ as e -> e
        | Ok () -> (
            match decode_payload (Bytes.unsafe_to_string payload) with
            | Ok frame ->
                Obs.Metrics.incr m_frames_in;
                Ok frame
            | Result.Error msg ->
                Obs.Metrics.incr m_rejects;
                Result.Error (Malformed msg)))

let write_frame fd frame =
  let bytes = encode frame in
  let len = String.length bytes in
  let rec go off =
    if off = len then Ok ()
    else
      match Unix.write_substring fd bytes off (len - off) with
      | n -> go (off + n)
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go off
      | exception Unix.Unix_error (e, _, _) ->
          Result.Error (Unix.error_message e)
  in
  let r = go 0 in
  if Result.is_ok r then Obs.Metrics.incr m_frames_out;
  r
