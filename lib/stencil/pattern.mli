(** A detected stencil pattern — the unit AN5D compiles and optimizes —
    with the classification that drives optimization selection
    (§4.1). *)

type opt_class =
  | Diag_free
      (** star stencils: upper/lower sub-planes live in registers,
          shared memory holds only the center plane *)
  | Associative
      (** computable by per-plane partial sums: same shared-memory
          footprint as stars *)
  | General_box  (** [1 + 2*rad] planes must stay in shared memory *)

val opt_class_to_string : opt_class -> string

type t = {
  name : string;
  dims : int;  (** number of spatial dimensions N *)
  radius : int;
  shape : Shape.kind;
  expr : Sexpr.t;
  offsets : int array list;  (** cells read, sorted *)
  params : (string * float) list;  (** scalar parameter values *)
}

val make :
  name:string -> dims:int -> params:(string * float) list -> Sexpr.t -> t
(** Derives offsets, radius and shape from the expression.
    @raise Invalid_argument on rank mismatches. *)

val opt_class : t -> opt_class

val flops_per_cell : t -> int
(** Table 3 convention (see {!Sexpr.flops}). *)

val ops_per_cell : t -> Sexpr.ops

val uses_division : t -> bool

val param_value : t -> string -> float
(** @raise Invalid_argument on an unbound parameter. *)

val compile : t -> (int array -> float) -> float
(** The update as a closure over an offset reader. *)

val lower : t -> Sexpr.lowered
(** The update lowered for table-driven execution (the compiled-plan
    layer); bit-identical to {!compile} on every path. *)

val dependences : t -> Poly.Dependence.vector list

val offsets_by_plane : t -> (int * int array list) list
(** Offsets grouped by streaming-dimension coordinate, ascending. *)

val inplane_radius : t -> int
(** Largest non-streaming offset component (sizes the in-plane halo of
    a shared-memory tile). *)

val pp : Format.formatter -> t -> unit
