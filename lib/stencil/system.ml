(** Multi-statement stencil systems — the paper's §8 future work
    ("implement multi-output temporal blocking to optimize
    multi-statement stencils") made concrete.

    A system couples [S] state arrays: each time-step updates every
    array from the previous values of *all* arrays,

    {[ a_k(t+1, x) = f_k(a_0(t, .), ..., a_(S-1)(t, .)) ]}

    which covers multi-field PDE solvers (wave equations as first-order
    systems, reaction-diffusion, FDTD's staggered E/H fields). The
    expression IR mirrors {!Sexpr} with reads tagged by component. *)

type expr =
  | Const of float
  | Param of string
  | Read of int * int array  (** component index, spatial offset *)
  | Neg of expr
  | Add of expr * expr
  | Sub of expr * expr
  | Mul of expr * expr
  | Div of expr * expr
  | Sqrt of expr

type t = {
  name : string;
  dims : int;  (** spatial dimensions *)
  components : (string * expr) list;  (** one update per state array *)
  params : (string * float) list;
}

let rec fold_expr f acc e =
  let acc = f acc e in
  match e with
  | Const _ | Param _ | Read _ -> acc
  | Neg a | Sqrt a -> fold_expr f acc a
  | Add (a, b) | Sub (a, b) | Mul (a, b) | Div (a, b) ->
      fold_expr f (fold_expr f acc a) b

(** Offsets read from component [k] by an expression. *)
let reads_of ~component e =
  let add acc = function
    | Read (k, o) when k = component -> o :: acc
    | _ -> acc
  in
  Shape.sort_offsets (fold_expr add [] e)

(** All offsets read by an expression, over all components. *)
let all_reads e =
  let add acc = function Read (_, o) -> o :: acc | _ -> acc in
  Shape.sort_offsets (fold_expr add [] e)

let n_components t = List.length t.components

let validate t =
  if t.dims < 1 then invalid_arg "System: dims must be >= 1";
  if t.components = [] then invalid_arg "System: no components";
  List.iter
    (fun (cname, e) ->
      List.iter
        (fun o ->
          if Array.length o <> t.dims then
            invalid_arg (Fmt.str "System %s: offset rank mismatch in %s" t.name cname))
        (all_reads e);
      let check acc = function
        | Read (k, _) when k < 0 || k >= n_components t -> true
        | _ -> acc
      in
      if fold_expr check false e then
        invalid_arg (Fmt.str "System %s: component index out of range in %s" t.name cname))
    t.components;
  t

let make ~name ~dims ~params components =
  validate { name; dims; components; params }

(** Radius of the whole system: information moves this far per step. *)
let radius t =
  List.fold_left
    (fun r (_, e) -> max r (Shape.radius (all_reads e)))
    0 t.components

(** Per-component FLOP count, same convention as {!Sexpr.flops}. *)
let rec flops_expr = function
  | Const _ | Param _ | Read _ -> 0
  | Neg a -> flops_expr a
  | Add (a, b) | Sub (a, b) | Mul (a, b) -> 1 + flops_expr a + flops_expr b
  | Div (Const 1.0, Sqrt a) -> 1 + flops_expr a
  | Div (a, Sqrt b) -> 2 + flops_expr a + flops_expr b
  | Div (a, b) -> 1 + flops_expr a + flops_expr b
  | Sqrt a -> 1 + flops_expr a

let flops_per_cell t =
  List.fold_left (fun acc (_, e) -> acc + flops_expr e) 0 t.components

let param_value t name =
  match List.assoc_opt name t.params with
  | Some v -> v
  | None -> invalid_arg (Fmt.str "System %s: unbound parameter %s" t.name name)

(** Compile one component's update to a closure over a tagged reader. *)
let compile_component t e : (int -> int array -> float) -> float =
  let rec go = function
    | Const c -> fun _ -> c
    | Param p ->
        let v = param_value t p in
        fun _ -> v
    | Read (k, o) ->
        let o = Array.copy o in
        fun read -> read k o
    | Neg a ->
        let fa = go a in
        fun read -> -.fa read
    | Add (a, b) ->
        let fa = go a and fb = go b in
        fun read -> fa read +. fb read
    | Sub (a, b) ->
        let fa = go a and fb = go b in
        fun read -> fa read -. fb read
    | Mul (a, b) ->
        let fa = go a and fb = go b in
        fun read -> fa read *. fb read
    | Div (a, b) ->
        let fa = go a and fb = go b in
        fun read -> fa read /. fb read
    | Sqrt a ->
        let fa = go a in
        fun read -> sqrt (fa read)
  in
  go e

let compile t = List.map (fun (_, e) -> compile_component t e) t.components

(* ------------------------------------------------------------------ *)
(* Reference executor                                                  *)
(* ------------------------------------------------------------------ *)

(** One time-step of the whole system: all components read the previous
    state of all arrays; boundary cells are frozen. *)
let step t ~(src : Grid.t list) ~(dst : Grid.t list) =
  if List.length src <> n_components t || List.length dst <> n_components t then
    invalid_arg "System.step: component count mismatch";
  let src = Array.of_list src and dst = Array.of_list dst in
  let dims = src.(0).Grid.dims in
  Array.iter
    (fun g ->
      if g.Grid.dims <> dims then invalid_arg "System.step: grids must agree")
    src;
  let rad = radius t in
  let updates = Array.of_list (compile t) in
  let interior = Grid.interior ~rad src.(0) in
  Array.iteri (fun k dstk -> Grid.blit ~src:src.(k) ~dst:dstk) dst;
  let idx_buf = Array.make t.dims 0 in
  Poly.Box.iter
    (fun idx ->
      let read k off =
        Array.iteri (fun d i -> idx_buf.(d) <- i + off.(d)) idx;
        Grid.get src.(k) idx_buf
      in
      Array.iteri (fun k update -> Grid.set dst.(k) idx (update read)) updates)
    interior

(** Run [steps] time-steps; returns the final grids (input unchanged). *)
let run t ~steps (gs : Grid.t list) =
  if steps < 0 then invalid_arg "System.run: negative step count";
  let cur = ref (List.map Grid.copy gs) and nxt = ref (List.map Grid.copy gs) in
  for _ = 1 to steps do
    step t ~src:!cur ~dst:!nxt;
    let tmp = !cur in
    cur := !nxt;
    nxt := tmp
  done;
  !cur

let total_flops t ~dims ~steps =
  let interior = Poly.Box.shrink (radius t) (Poly.Box.of_dims dims) in
  float (Poly.Box.volume interior) *. float (flops_per_cell t) *. float steps

let pp ppf t =
  Fmt.pf ppf "%s: %dD system of %d components, rad=%d, %d flop/cell" t.name t.dims
    (n_components t) (radius t) (flops_per_cell t)
