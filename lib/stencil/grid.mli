(** Dense N-dimensional grids of floats, row-major, backed by flat
    [Bigarray.Array1] buffers (C layout); dimension 0 is the streaming
    dimension of N.5D blocking.

    The stored element type follows the grid's precision: an [F32] grid
    owns a 32-bit buffer (every store quantizes through IEEE single —
    the same rounding as the historical [round_to_prec F32]), an [F64]
    grid a 64-bit one. Float/double variants therefore differ both
    numerically and in bytes moved, and the flat buffer supports
    zero-copy slicing ([sub]) and wrapping ([of_bigarray]) for
    sharding. *)

type precision = F32 | F64

val bytes_per_word : precision -> int

val precision_to_string : precision -> string

type f32buf = (float, Bigarray.float32_elt, Bigarray.c_layout) Bigarray.Array1.t

type f64buf = (float, Bigarray.float64_elt, Bigarray.c_layout) Bigarray.Array1.t

type buf = B32 of f32buf | B64 of f64buf
(** Flat storage tagged by element type. Hot loops match once on the
    constructor and then run monomorphic: inside an arm the element kind
    is statically known, so bigarray access compiles to direct loads. *)

type t = {
  dims : int array;
  strides : int array;  (** row-major; last dimension contiguous *)
  buf : buf;
  prec : precision;  (** always agrees with the [buf] constructor *)
}

val buf_size : buf -> int

val create : ?prec:precision -> int array -> t
(** Zero-initialized grid.
    @raise Invalid_argument on a zero-rank grid or non-positive size. *)

val of_bigarray : dims:int array -> buf -> t
(** Wrap an existing flat buffer as a grid — shares storage, no copy.
    Precision is the buffer's own element type.
    @raise Invalid_argument when the buffer length does not match [dims]. *)

val rank : t -> int

val size : t -> int

val copy : t -> t

val round_to_prec : precision -> float -> float
(** Identity for [F64]; rounds through IEEE single for [F32]. *)

val linear : t -> int array -> int
(** Row-major linear offset of a multi-index (bounds-checked).
    @raise Invalid_argument when out of bounds. *)

val get : t -> int array -> float

val set : t -> int array -> float -> unit
(** Stores with precision rounding (an [F32] store quantizes). *)

val get_lin : t -> int -> float
(** Bounds-checked linear accessor. *)

val set_lin : t -> int -> float -> unit
(** Bounds-checked linear store; quantizes on [F32] grids. *)

val unsafe_get_lin : t -> int -> float
(** Unchecked linear load. Contract: the caller must have proven
    [0 <= off < size g] {e before} the access — in the executors this is
    the interior/boundary peeling invariant (only in-grid threads and
    interior positions reach the unsafe path; boundary cells take the
    checked path or a blit). Only the audited hot-loop modules
    ([Stencil.Reference], [An5d_core.Plan]) may call this;
    scripts/check_unsafe.sh enforces the allowlist. *)

val unsafe_set_lin : t -> int -> float -> unit
(** Unchecked linear store; same contract as {!unsafe_get_lin}. *)

val blit : src:t -> dst:t -> unit
(** Whole-grid copy as one flat memcpy.
    @raise Invalid_argument on dimension or precision mismatch. *)

val sub : t -> lo:int -> hi:int -> t
(** Plane range [lo, hi) along the streaming dimension, {e sharing}
    storage with the parent grid (writes through the view are visible in
    the parent) — the zero-copy building block for sharding.
    @raise Invalid_argument on an empty or out-of-range plane range. *)

val fill : t -> float -> unit

val fold : ('a -> float -> 'a) -> 'a -> t -> 'a
(** Fold over values in linear (row-major) order. *)

val iter : (float -> unit) -> t -> unit

val to_array : t -> float array
(** Fresh boxed copy of the values, linear order (test/debug surface). *)

val to_bytes : t -> Bytes.t
(** The raw stored words as little-endian bytes ([4 * size] for [F32],
    [8 * size] for [F64]) — the halo-frame payload of the
    process-level shard transport. Precision-correct like {!digest};
    works on {!sub} views. *)

val blit_of_bytes : t -> Bytes.t -> unit
(** Inverse of {!to_bytes} into an existing grid (or view): stores
    exactly the bits the sender held, so a cross-process round trip is
    bit-identical in both precisions.
    @raise Invalid_argument when the byte count does not match the
    grid's size and precision. *)

val digest : t -> string
(** Hex digest of dims, precision and the raw stored words.
    Precision-correct: an [F32] grid digests its 32-bit words, so grids
    differing only in storage precision never collide. *)

val init : ?prec:precision -> int array -> (int array -> float) -> t

val init_random : ?prec:precision -> ?seed:int -> int array -> t
(** Deterministic pseudo-random values in [0, 1); stable across runs. *)

val domain : t -> Poly.Box.t

val interior : rad:int -> t -> Poly.Box.t
(** Cells whose whole radius-[rad] neighborhood is in bounds — the only
    cells a stencil sweep updates (§4.1 boundary handling). *)

val max_abs_diff : t -> t -> float
(** @raise Invalid_argument on dimension mismatch. *)

val equal : ?tol:float -> t -> t -> bool

val rel_l2_error : t -> t -> float
(** Relative L2 error of the second grid against the first. *)

val pp : Format.formatter -> t -> unit
