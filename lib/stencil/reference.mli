(** Naive reference executor: the stencil exactly as the C input
    describes it — a time loop around full double-buffered sweeps.
    Every optimized executor is bit-compared against this one (the
    artifact's CPU verification, §A.6). *)

(** Sweep implementation: [Compiled] (default) walks the interior with
    linear indices and per-offset linear deltas off the lowered
    expression ({!Pattern.lower}), through bounds-checked monomorphic
    buffer access; [Bigarray] is the same sweep through unchecked
    indexing, guarded by a once-per-sweep proof that every interior
    position plus every lowered delta stays inside the flat buffer (the
    peeling invariant — boundary cells are blitted, never swept);
    [Closure] is the legacy per-cell bounds-checked path. Bit-identical
    results, differentially tested. *)
type impl = Compiled | Closure | Bigarray

val step : ?impl:impl -> Pattern.t -> src:Grid.t -> dst:Grid.t -> unit
(** One time-step; boundary cells are copied unchanged.
    @raise Invalid_argument on rank/dimension mismatches. *)

val run : ?impl:impl -> Pattern.t -> steps:int -> Grid.t -> Grid.t
(** [steps] time-steps from the given initial grid; the input is not
    modified. The expression lowering is hoisted out of the time loop.
    @raise Invalid_argument on a negative step count. *)

val total_flops : Pattern.t -> dims:int array -> steps:int -> float
(** FLOPs of [steps] sweeps over the interior — the GFLOP/s denominator
    convention used throughout the paper. *)
