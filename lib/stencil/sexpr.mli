(** Stencil arithmetic expression IR: the update of one cell from the
    previous time-step. Shared by detection, all executors, the code
    generator and the performance model, so every component agrees on
    semantics and operation counts by construction. *)

type t =
  | Const of float
  | Coef of int array
      (** symbolic compile-time coefficient attached to an offset,
          valued deterministically by {!coef_value} *)
  | Param of string  (** scalar function parameter (e.g. [c0]) *)
  | Cell of int array  (** read of the previous time-step at an offset *)
  | Neg of t
  | Add of t * t
  | Sub of t * t
  | Mul of t * t
  | Div of t * t
  | Sqrt of t

val coef_mul : int array -> t
(** [Coef o * Cell o]. *)

val weighted_sum : int array list -> t
(** [sum_o c_o * cell_o], left-folded in list order — the canonical
    synthetic star/box computation of Table 3.
    @raise Invalid_argument on an empty offset list. *)

val fold : ('a -> t -> 'a) -> 'a -> t -> 'a

val offsets : t -> int array list
(** Offsets read, deduplicated and sorted. *)

val params : t -> string list

val flops : t -> int
(** FLOP count per the paper's Table 3 convention: every operator as
    written counts 1 (no CSE), except fast-math [1/sqrt x] fuses to a
    single rsqrt. *)

(** Operation mix for the ALU-efficiency model of §5. *)
type ops = { fma : int; mul : int; add : int; other : int }

val zero_ops : ops

val total_ops : ops -> int

val weighted_flops : ops -> int
(** FLOPs with FMA counting 2 — the paper's [total_comp] per cell. *)

val alu_efficiency : ops -> float
(** [eff_ALU = (2*fma + mul + add + other) / (2 * total)] (§5). *)

val raw_counts : t -> ops
(** Operator counts before FMA merging, under the fast-math rules of
    §5 (division by an invariant becomes a fusable multiplication,
    [1/sqrt] is one special-function op). *)

val classify_ops : t -> ops
(** After greedy FMA merging: [min(mul, add)] operations fuse. *)

val uses_division : t -> bool
(** The §7.1 double-precision pathology concerns exactly these. *)

val uses_sqrt : t -> bool

val plane_of_offset : int array -> int
(** Coordinate along the streaming dimension (dimension 0). *)

val is_associative : t -> bool
(** Computable by per-plane partial summation: a sum of single-plane
    terms, optionally wrapped in a final division by an invariant
    (§4.1's associative-stencil condition). *)

val partial_sums : t -> ((int * t) list * (t -> t)) option
(** Summands grouped by sub-plane (ascending), plus the post-operation
    applied to the completed sum; [None] if not associative. *)

val coef_value : int array -> float
(** Deterministic compile-time value of a symbolic coefficient, stable
    across runs, in [0.05, 0.2). *)

val compile : param:(string -> float) -> t -> (int array -> float) -> float
(** Compile to a closure over an offset reader; parameters are resolved
    once. Keeps executor inner loops free of AST matching. *)

val compile_partial_sums :
  param:(string -> float) ->
  t ->
  (((int * ((int array -> float) -> float)) list * (float -> float)) option)
(** Partial-summation evaluation of an associative expression: per-plane
    compiled closures (ascending plane order) plus the numeric
    post-operation. The accumulation order matches AN5D's streaming CALC
    macros (§4.1), which reassociates the source expression — the
    rounding therefore differs from {!compile}, exactly like the real
    artifact's GPU-vs-CPU error (§A.6). [None] if not associative. *)

val compile_indexed :
  param:(string -> float) ->
  index:(int array -> int) ->
  t ->
  (int -> float) ->
  float
(** Like {!compile}, but [Cell] reads go through an integer index
    resolved once at compile time by [index]. The closure tree performs
    the same operations in the same order as {!compile}, so with
    [read (index o) = read_by_offset o] the result is bit-identical —
    this is what lets executor inner loops replace per-cell offset
    arithmetic with table lookups. *)

type post_op = Post_none | Post_div of float

(** Fully flattened linear combination: term [k] reads offsets-table
    index [lt_off.(k)], scaled by [lt_coef.(k)] when [lt_scaled.(k)].
    When [lt_off2.(k) >= 0] the term is a folded symmetric pair
    [c * (a + b)] (§4.2): the second read adds to the first *before*
    scaling, matching the source sub-tree [Mul (c, Add (a, b))] exactly.
    Terms accumulate left to right from term 0 (the left [Add] spine of
    {!weighted_sum}), then [lt_post] applies — rounding-identical to the
    compiled closure by construction. *)
type linear_form = {
  lt_off : int array;
  lt_off2 : int array;  (** second read of a folded pair, [-1] if unpaired *)
  lt_coef : float array;
  lt_scaled : bool array;
  lt_post : post_op;
}

(** One per-plane partial-sum group (§4.1): flat when linear, indexed
    closure always. *)
type plane_group = {
  g_plane : int;
  g_linear : linear_form option;
  g_eval : (int -> float) -> float;
}

(** Which specialized streaming kernel a lowered expression dispatches
    to (docs/SIMULATOR.md): fully unrolled fused kernels for arities
    3/5/7/9, a chunked wide kernel for other linear arities, a
    pair-aware kernel when symmetric folding produced [c*(a+b)] terms,
    and the generic per-term interpreter when no flat linear form
    exists. *)
type kernel_shape =
  | K_fused of int  (** fully unrolled; arity in {3,5,7,9} *)
  | K_wide of int  (** chunked accumulation for any other linear arity *)
  | K_folded of int  (** pair-aware; the int counts distinct points read *)
  | K_generic  (** no flat linear form — per-term fallback *)

val kernel_shape_of_linear : linear_form option -> kernel_shape
(** Static classification used by the streaming executor's dispatch. *)

val kernel_shape_name : kernel_shape -> string
(** Stable name for metrics/bench JSON: ["fused5pt"], ["wide27pt"],
    ["folded5pt"], ["generic"]. *)

(** Precompiled table-driven execution form: the distinct offsets (the
    read index space), an indexed closure bit-identical to {!compile},
    the flat linear form when the expression is a left-leaning weighted
    sum with an optional invariant-divisor post-op, the streaming-kernel
    classification derived from it, and partial-sum groups mirroring
    {!compile_partial_sums}. *)
type lowered = {
  low_offsets : int array array;
  low_eval : (int -> float) -> float;
  low_linear : linear_form option;
  low_kernel : kernel_shape;
  low_partial : (plane_group array * (float -> float)) option;
}

val apply_post : post_op -> float -> float

val eval_linear : linear_form -> (int -> float) -> float
(** Reference evaluation of a linear form — the same accumulation order
    the executors inline. *)

val lower : param:(string -> float) -> t -> lowered
(** Lower for table-driven execution; every evaluation path is
    bit-identical to the corresponding closure path ({!compile} /
    {!compile_partial_sums}), which the differential test suite
    asserts. *)

val pp : Format.formatter -> t -> unit

val to_string : t -> string
