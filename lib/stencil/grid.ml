(** Dense N-dimensional grids of floats, row-major, stored in flat
    [Bigarray.Array1] buffers (C layout).

    Dimension 0 is the streaming dimension of N.5D blocking; the last
    dimension is contiguous (what CUDA threads coalesce over). The
    stored element type follows [prec]: an [F32] grid owns a genuine
    32-bit buffer (every store quantizes through IEEE single, exactly
    like the historical [round_to_prec] on a boxed [float array]), an
    [F64] grid a 64-bit one — so float/double benchmark variants differ
    both numerically and in bytes moved, and the buffer can be blitted,
    sliced and shared without copies (the layout prerequisite for
    sharding and mmap-able checkpoints).

    The checked accessors ([get]/[set]/[get_lin]/[set_lin]) are the
    default surface. The [unsafe_*_lin] accessors and the raw [buf]
    constructors exist for the audited executor hot loops only; see the
    contract on {!unsafe_get_lin} and scripts/check_unsafe.sh. *)

type precision = F32 | F64

let bytes_per_word = function F32 -> 4 | F64 -> 8

let precision_to_string = function F32 -> "float" | F64 -> "double"

type f32buf = (float, Bigarray.float32_elt, Bigarray.c_layout) Bigarray.Array1.t

type f64buf = (float, Bigarray.float64_elt, Bigarray.c_layout) Bigarray.Array1.t

(** Flat storage, tagged by element type. Hot loops match once on the
    constructor and then run monomorphic: inside each arm the element
    kind is statically known, so [Bigarray.Array1.unsafe_get] compiles
    to a direct load instead of the generic dispatch. *)
type buf = B32 of f32buf | B64 of f64buf

type t = {
  dims : int array;
  strides : int array;
  buf : buf;
  prec : precision;  (** always agrees with the [buf] constructor *)
}

let strides_of_dims dims =
  let n = Array.length dims in
  let strides = Array.make n 1 in
  for d = n - 2 downto 0 do
    strides.(d) <- strides.(d + 1) * dims.(d + 1)
  done;
  strides

let size_of_dims dims = Array.fold_left ( * ) 1 dims

let buf_size = function
  | B32 a -> Bigarray.Array1.dim a
  | B64 a -> Bigarray.Array1.dim a

let prec_of_buf = function B32 _ -> F32 | B64 _ -> F64

let alloc_buf prec n =
  match prec with
  | F32 ->
      let a = Bigarray.Array1.create Bigarray.float32 Bigarray.c_layout n in
      Bigarray.Array1.fill a 0.0;
      B32 a
  | F64 ->
      let a = Bigarray.Array1.create Bigarray.float64 Bigarray.c_layout n in
      Bigarray.Array1.fill a 0.0;
      B64 a

let check_dims dims =
  if Array.length dims = 0 then invalid_arg "Grid.create: zero-rank grid";
  Array.iter (fun d -> if d <= 0 then invalid_arg "Grid.create: non-positive dim") dims

let create ?(prec = F64) dims =
  check_dims dims;
  {
    dims = Array.copy dims;
    strides = strides_of_dims dims;
    buf = alloc_buf prec (size_of_dims dims);
    prec;
  }

(** Wrap an existing flat buffer as a grid (shares storage — no copy).
    The precision is the buffer's own element type. *)
let of_bigarray ~dims buf =
  check_dims dims;
  if buf_size buf <> size_of_dims dims then
    invalid_arg
      (Fmt.str "Grid.of_bigarray: buffer holds %d words, dims need %d"
         (buf_size buf) (size_of_dims dims));
  { dims = Array.copy dims; strides = strides_of_dims dims; buf;
    prec = prec_of_buf buf }

let rank g = Array.length g.dims

let size g = buf_size g.buf

let copy g =
  let buf =
    match g.buf with
    | B32 a ->
        let b = Bigarray.Array1.create Bigarray.float32 Bigarray.c_layout
            (Bigarray.Array1.dim a) in
        Bigarray.Array1.blit a b;
        B32 b
    | B64 a ->
        let b = Bigarray.Array1.create Bigarray.float64 Bigarray.c_layout
            (Bigarray.Array1.dim a) in
        Bigarray.Array1.blit a b;
        B64 b
  in
  { g with buf; dims = Array.copy g.dims }

let round_to_prec prec v =
  match prec with F64 -> v | F32 -> Int32.float_of_bits (Int32.bits_of_float v)

let linear g idx =
  let n = Array.length g.dims in
  let off = ref 0 in
  for d = 0 to n - 1 do
    let i = idx.(d) in
    if i < 0 || i >= g.dims.(d) then
      invalid_arg
        (Fmt.str "Grid: index %d out of bounds [0,%d) in dim %d" i g.dims.(d) d);
    off := !off + (i * g.strides.(d))
  done;
  !off

(** Checked linear accessors. A store to an [F32] grid quantizes through
    IEEE single by construction — the hardware double->single conversion
    is the same rounding as [round_to_prec F32]. *)
let get_lin g off =
  match g.buf with
  | B32 a -> Bigarray.Array1.get a off
  | B64 a -> Bigarray.Array1.get a off

let set_lin g off v =
  match g.buf with
  | B32 a -> Bigarray.Array1.set a off v
  | B64 a -> Bigarray.Array1.set a off v

let get g idx = get_lin g (linear g idx)

let set g idx v = set_lin g (linear g idx) v

(* ------------------------------------------------------------------ *)
(* Unsafe linear accessors — the audited-hot-loop contract             *)
(* ------------------------------------------------------------------ *)

(** Unchecked linear accessors. Contract: callers must have proven
    [0 <= off < size g] *before* the access — in the executors this is
    the interior/boundary peeling invariant (only in-grid threads and
    interior linear positions reach the unsafe path; boundary cells go
    through the checked accessors or are blitted). Only the audited
    hot-loop modules ([Stencil.Reference], [An5d_core.Plan]) may call
    these; scripts/check_unsafe.sh enforces that. *)
let unsafe_get_lin g off =
  match g.buf with
  | B32 a -> Bigarray.Array1.unsafe_get a off
  | B64 a -> Bigarray.Array1.unsafe_get a off

let unsafe_set_lin g off v =
  match g.buf with
  | B32 a -> Bigarray.Array1.unsafe_set a off v
  | B64 a -> Bigarray.Array1.unsafe_set a off v

(* ------------------------------------------------------------------ *)
(* Bulk operations over the flat buffer                                *)
(* ------------------------------------------------------------------ *)

(** Whole-grid copy [src -> dst]. Same dims and same precision required;
    compiles to one flat memcpy. *)
let blit ~src ~dst =
  if src.dims <> dst.dims then invalid_arg "Grid.blit: dimension mismatch";
  match (src.buf, dst.buf) with
  | B32 a, B32 b -> Bigarray.Array1.blit a b
  | B64 a, B64 b -> Bigarray.Array1.blit a b
  | _ -> invalid_arg "Grid.blit: precision mismatch"

(** Plane range [lo, hi) along the streaming dimension as a grid that
    *shares* storage with [g] — the zero-copy building block for
    sharding and halo exchange. Writes through the view are visible in
    the parent. *)
let sub g ~lo ~hi =
  if lo < 0 || hi > g.dims.(0) || lo >= hi then
    invalid_arg
      (Fmt.str "Grid.sub: plane range [%d,%d) outside [0,%d)" lo hi g.dims.(0));
  let plane = g.strides.(0) in
  let dims = Array.copy g.dims in
  dims.(0) <- hi - lo;
  let buf =
    match g.buf with
    | B32 a -> B32 (Bigarray.Array1.sub a (lo * plane) ((hi - lo) * plane))
    | B64 a -> B64 (Bigarray.Array1.sub a (lo * plane) ((hi - lo) * plane))
  in
  { dims; strides = strides_of_dims dims; buf; prec = g.prec }

let fill g v =
  match g.buf with
  | B32 a -> Bigarray.Array1.fill a (round_to_prec F32 v)
  | B64 a -> Bigarray.Array1.fill a v

let fold f init g =
  match g.buf with
  | B64 a ->
      let acc = ref init in
      for i = 0 to Bigarray.Array1.dim a - 1 do
        acc := f !acc (Bigarray.Array1.get a i)
      done;
      !acc
  | B32 a ->
      let acc = ref init in
      for i = 0 to Bigarray.Array1.dim a - 1 do
        acc := f !acc (Bigarray.Array1.get a i)
      done;
      !acc

let iter f g = fold (fun () v -> f v) () g

let to_array g = Array.init (size g) (fun i -> get_lin g i)

(** Digest of the grid's identity: dims, precision and the raw stored
    words. Precision-correct by construction — an [F32] grid digests
    its 32-bit words, so grids that differ only in storage precision
    never collide, and bit-identical runs digest identically. *)
(* Raw stored words as little-endian bytes — the halo-frame payload of
   the process-level shard transport. Precision-correct like [digest]:
   an F32 grid ships its 32-bit words, so the receiving process stores
   exactly the bits the sender held and round trips are bit-identical
   in both precisions. Works on [sub] views (flat contiguous ranges). *)
let to_bytes g =
  match g.buf with
  | B32 a ->
      let n = Bigarray.Array1.dim a in
      let b = Bytes.create (n * 4) in
      for i = 0 to n - 1 do
        Bytes.set_int32_le b (i * 4) (Int32.bits_of_float (Bigarray.Array1.get a i))
      done;
      b
  | B64 a ->
      let n = Bigarray.Array1.dim a in
      let b = Bytes.create (n * 8) in
      for i = 0 to n - 1 do
        Bytes.set_int64_le b (i * 8) (Int64.bits_of_float (Bigarray.Array1.get a i))
      done;
      b

let blit_of_bytes g b =
  let words = size g in
  if Bytes.length b <> words * bytes_per_word g.prec then
    invalid_arg
      (Fmt.str "Grid.blit_of_bytes: %d bytes for a %d-word %s grid"
         (Bytes.length b) words (precision_to_string g.prec));
  match g.buf with
  | B32 a ->
      for i = 0 to words - 1 do
        Bigarray.Array1.set a i (Int32.float_of_bits (Bytes.get_int32_le b (i * 4)))
      done
  | B64 a ->
      for i = 0 to words - 1 do
        Bigarray.Array1.set a i (Int64.float_of_bits (Bytes.get_int64_le b (i * 8)))
      done

let digest g =
  let b = Buffer.create (64 + (size g * 8)) in
  Buffer.add_string b (precision_to_string g.prec);
  Array.iter (fun d -> Buffer.add_string b (Fmt.str "x%d" d)) g.dims;
  Buffer.add_char b ':';
  (match g.buf with
  | B32 a ->
      for i = 0 to Bigarray.Array1.dim a - 1 do
        Buffer.add_int32_le b (Int32.bits_of_float (Bigarray.Array1.get a i))
      done
  | B64 a ->
      for i = 0 to Bigarray.Array1.dim a - 1 do
        Buffer.add_int64_le b (Int64.bits_of_float (Bigarray.Array1.get a i))
      done);
  Digest.to_hex (Digest.string (Buffer.contents b))

(* ------------------------------------------------------------------ *)
(* Initialization                                                      *)
(* ------------------------------------------------------------------ *)

(** Initialize with a function of the index. *)
let init ?(prec = F64) dims f =
  let g = create ~prec dims in
  Poly.Box.iter (fun idx -> set g idx (f idx)) (Poly.Box.of_dims dims);
  g

(** Deterministic pseudo-random initialization; stable across runs so
    executor comparisons are reproducible. Values in [0, 1). *)
let init_random ?(prec = F64) ?(seed = 42) dims =
  init ~prec dims (fun idx ->
      let h =
        Array.fold_left
          (fun acc i -> (acc * 1103515245) + i + 12345)
          seed idx
      in
      (* [abs min_int] is still [min_int]; masking the sign bit after
         the [abs] keeps the value non-negative on that one hash while
         leaving every other seed's stream unchanged. *)
      float (abs h land max_int mod 1_000_003) /. 1_000_003.0)

let domain g : Poly.Box.t = Poly.Box.of_dims g.dims

(** Interior of the grid at stencil radius [rad]: cells whose whole
    neighborhood is in bounds; only these are updated (boundary cells hold
    the boundary condition, paper §4.1). *)
let interior ~rad g : Poly.Box.t = Poly.Box.shrink rad (domain g)

(* ------------------------------------------------------------------ *)
(* Comparisons                                                         *)
(* ------------------------------------------------------------------ *)

let max_abs_diff a b =
  if a.dims <> b.dims then invalid_arg "Grid.max_abs_diff: dimension mismatch";
  match (a.buf, b.buf) with
  | B64 x, B64 y ->
      let m = ref 0.0 in
      for i = 0 to Bigarray.Array1.dim x - 1 do
        m :=
          Float.max !m
            (Float.abs (Bigarray.Array1.get x i -. Bigarray.Array1.get y i))
      done;
      !m
  | _ ->
      (* mixed or single precision: values widen to float either way *)
      let m = ref 0.0 in
      for i = 0 to size a - 1 do
        m := Float.max !m (Float.abs (get_lin a i -. get_lin b i))
      done;
      !m

let equal ?(tol = 0.0) a b = a.dims = b.dims && max_abs_diff a b <= tol

(** Relative L2 error of [b] against reference [a]. *)
let rel_l2_error a b =
  if a.dims <> b.dims then invalid_arg "Grid.rel_l2_error: dimension mismatch";
  let num = ref 0.0 and den = ref 0.0 in
  for i = 0 to size a - 1 do
    let va = get_lin a i in
    let d = va -. get_lin b i in
    num := !num +. (d *. d);
    den := !den +. (va *. va)
  done;
  if !den = 0.0 then sqrt !num else sqrt (!num /. !den)

let pp ppf g =
  Fmt.pf ppf "grid<%s>%a" (precision_to_string g.prec)
    Fmt.(array ~sep:(any "x") int)
    g.dims
