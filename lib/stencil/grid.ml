(** Dense N-dimensional grids of floats, row-major.

    Dimension 0 is the streaming dimension of N.5D blocking; the last
    dimension is contiguous (what CUDA threads coalesce over). Grids
    carry their element precision only as metadata ([prec]); values are
    always stored as OCaml floats, with single-precision rounding applied
    on store when [prec = F32] so that float/double benchmark variants
    genuinely differ numerically. *)

type precision = F32 | F64

let bytes_per_word = function F32 -> 4 | F64 -> 8

let precision_to_string = function F32 -> "float" | F64 -> "double"

type t = {
  dims : int array;
  strides : int array;
  data : float array;
  prec : precision;
}

let strides_of_dims dims =
  let n = Array.length dims in
  let strides = Array.make n 1 in
  for d = n - 2 downto 0 do
    strides.(d) <- strides.(d + 1) * dims.(d + 1)
  done;
  strides

let size_of_dims dims = Array.fold_left ( * ) 1 dims

let create ?(prec = F64) dims =
  if Array.length dims = 0 then invalid_arg "Grid.create: zero-rank grid";
  Array.iter (fun d -> if d <= 0 then invalid_arg "Grid.create: non-positive dim") dims;
  {
    dims = Array.copy dims;
    strides = strides_of_dims dims;
    data = Array.make (size_of_dims dims) 0.0;
    prec;
  }

let rank g = Array.length g.dims

let size g = Array.length g.data

let copy g = { g with data = Array.copy g.data; dims = Array.copy g.dims }

let round_to_prec prec v =
  match prec with F64 -> v | F32 -> Int32.float_of_bits (Int32.bits_of_float v)

let linear g idx =
  let n = Array.length g.dims in
  let off = ref 0 in
  for d = 0 to n - 1 do
    let i = idx.(d) in
    if i < 0 || i >= g.dims.(d) then
      invalid_arg
        (Fmt.str "Grid: index %d out of bounds [0,%d) in dim %d" i g.dims.(d) d);
    off := !off + (i * g.strides.(d))
  done;
  !off

let get g idx = g.data.(linear g idx)

let set g idx v = g.data.(linear g idx) <- round_to_prec g.prec v

(** Unchecked linear accessors for executor inner loops. *)
let get_lin g off = g.data.(off)

let set_lin g off v = g.data.(off) <- round_to_prec g.prec v

(** Initialize with a function of the index. *)
let init ?(prec = F64) dims f =
  let g = create ~prec dims in
  Poly.Box.iter (fun idx -> set g idx (f idx)) (Poly.Box.of_dims dims);
  g

(** Deterministic pseudo-random initialization; stable across runs so
    executor comparisons are reproducible. Values in [0, 1). *)
let init_random ?(prec = F64) ?(seed = 42) dims =
  init ~prec dims (fun idx ->
      let h =
        Array.fold_left
          (fun acc i -> (acc * 1103515245) + i + 12345)
          seed idx
      in
      (* [abs min_int] is still [min_int]; masking the sign bit after
         the [abs] keeps the value non-negative on that one hash while
         leaving every other seed's stream unchanged. *)
      float (abs h land max_int mod 1_000_003) /. 1_000_003.0)

let domain g : Poly.Box.t = Poly.Box.of_dims g.dims

(** Interior of the grid at stencil radius [rad]: cells whose whole
    neighborhood is in bounds; only these are updated (boundary cells hold
    the boundary condition, paper §4.1). *)
let interior ~rad g : Poly.Box.t = Poly.Box.shrink rad (domain g)

let max_abs_diff a b =
  if a.dims <> b.dims then invalid_arg "Grid.max_abs_diff: dimension mismatch";
  let m = ref 0.0 in
  Array.iteri (fun i va -> m := Float.max !m (Float.abs (va -. b.data.(i)))) a.data;
  !m

let equal ?(tol = 0.0) a b = a.dims = b.dims && max_abs_diff a b <= tol

(** Relative L2 error of [b] against reference [a]. *)
let rel_l2_error a b =
  if a.dims <> b.dims then invalid_arg "Grid.rel_l2_error: dimension mismatch";
  let num = ref 0.0 and den = ref 0.0 in
  Array.iteri
    (fun i va ->
      let d = va -. b.data.(i) in
      num := !num +. (d *. d);
      den := !den +. (va *. va))
    a.data;
  if !den = 0.0 then sqrt !num else sqrt (!num /. !den)

let pp ppf g =
  Fmt.pf ppf "grid<%s>%a" (precision_to_string g.prec)
    Fmt.(array ~sep:(any "x") int)
    g.dims
