(** Stencil arithmetic expression IR.

    One expression describes the update of a cell from the previous
    time-step: reads at static offsets ([Cell]), per-offset compile-time
    coefficients ([Coef], valued deterministically), scalar parameters
    ([Param], e.g. [c0] of j2d5pt), literals and arithmetic. This IR is
    what pattern detection produces and what every executor (reference,
    AN5D blocked, baselines) interprets, so all executors share one
    semantics by construction. *)

type t =
  | Const of float
  | Coef of int array  (** symbolic compile-time coefficient attached to an offset *)
  | Param of string  (** scalar function parameter *)
  | Cell of int array  (** read of the previous time-step at a spatial offset *)
  | Neg of t
  | Add of t * t
  | Sub of t * t
  | Mul of t * t
  | Div of t * t
  | Sqrt of t

(* ------------------------------------------------------------------ *)
(* Construction helpers                                                *)
(* ------------------------------------------------------------------ *)

let coef_mul o = Mul (Coef (Array.copy o), Cell (Array.copy o))

(** Weighted sum [sum_o c_o * cell_o] over the given offsets, left-folded
    in list order — the canonical synthetic star/box computation of
    Table 3. *)
let weighted_sum offsets =
  match offsets with
  | [] -> invalid_arg "Sexpr.weighted_sum: no offsets"
  | first :: rest -> List.fold_left (fun acc o -> Add (acc, coef_mul o)) (coef_mul first) rest

(* ------------------------------------------------------------------ *)
(* Analysis                                                            *)
(* ------------------------------------------------------------------ *)

let rec fold f acc e =
  let acc = f acc e in
  match e with
  | Const _ | Coef _ | Param _ | Cell _ -> acc
  | Neg a | Sqrt a -> fold f acc a
  | Add (a, b) | Sub (a, b) | Mul (a, b) | Div (a, b) -> fold f (fold f acc a) b

(** Offsets read by the expression, deduplicated and sorted. *)
let offsets e =
  let add acc = function Cell o -> o :: acc | _ -> acc in
  Shape.sort_offsets (fold add [] e)

let params e =
  let add acc = function Param p -> p :: acc | _ -> acc in
  List.sort_uniq String.compare (fold add [] e)

(** FLOP count per the paper's convention (Table 3): every arithmetic
    operator counts 1 as written (no CSE), except that under fast-math
    [x / sqrt y] and [1.0 / sqrt y] fuse into a single rsqrt-and-multiply
    — the fusion saves exactly one operation, which is how gradient2d's
    19 FLOP/cell arises. *)
let rec flops = function
  | Const _ | Coef _ | Param _ | Cell _ -> 0
  | Neg a -> flops a
  | Add (a, b) | Sub (a, b) | Mul (a, b) -> 1 + flops a + flops b
  | Div (Const 1.0, Sqrt a) -> 1 + flops a
  | Div (a, Sqrt b) -> 2 + flops a + flops b
  | Div (a, b) -> 1 + flops a + flops b
  | Sqrt a -> 1 + flops a

(** Operation mix for the ALU-efficiency model of §5. *)
type ops = { fma : int; mul : int; add : int; other : int }

let zero_ops = { fma = 0; mul = 0; add = 0; other = 0 }

let total_ops o = o.fma + o.mul + o.add + o.other

(** Weighted FLOPs with FMA counting 2 — the paper's [total_comp]
    numerator per cell. *)
let weighted_flops o = (2 * o.fma) + o.mul + o.add + o.other

(** ALU efficiency [eff_ALU] of §5. *)
let alu_efficiency o =
  if total_ops o = 0 then 1.0 else float (weighted_flops o) /. float (2 * total_ops o)

(** Raw operator counts (before FMA merging). Fast-math rules of §5:
    - division by a loop-invariant (param/const) becomes a multiplication
      and the dividend's sum is expanded over it, so the mul can fuse;
    - [1/sqrt] is a single special-function op (counted in [other]);
    - other divisions and sqrt count as [other]. *)
let rec raw_counts e =
  let ( ++ ) a b =
    { fma = 0; mul = a.mul + b.mul; add = a.add + b.add; other = a.other + b.other }
  in
  match e with
  | Const _ | Coef _ | Param _ | Cell _ -> zero_ops
  | Neg a -> raw_counts a
  | Add (a, b) | Sub (a, b) ->
      let c = raw_counts a ++ raw_counts b in
      { c with add = c.add + 1 }
  | Mul (a, b) ->
      let c = raw_counts a ++ raw_counts b in
      { c with mul = c.mul + 1 }
  | Div (Const 1.0, Sqrt a) ->
      let c = raw_counts a in
      { c with other = c.other + 1 }
  | Div (a, (Param _ | Const _ | Coef _)) ->
      (* Fast-math: [e / k] is [e * (1/k)]; when [e] is a sum the compiler
         expands the reciprocal over the terms, merging into FMAs, so the
         division itself contributes one multiplication. *)
      let c = raw_counts a in
      { c with mul = c.mul + 1 }
  | Div (a, b) ->
      let c = raw_counts a ++ raw_counts b in
      { c with other = c.other + 1 }
  | Sqrt a ->
      let c = raw_counts a in
      { c with other = c.other + 1 }

(** Op mix after greedy FMA merging: every multiplication followed by an
    addition fuses, i.e. [min(mul, add)] FMAs (§5: "all multiplications
    except the last one are followed by an addition"). *)
let classify_ops e =
  let raw = raw_counts e in
  let fused = min raw.mul raw.add in
  { fma = fused; mul = raw.mul - fused; add = raw.add - fused; other = raw.other }

(** Does the update use a division whose alternative fast-math
    implementation exists (the paper's §7.1 double-precision pathology
    concerns exactly these)? *)
let uses_division e =
  let check acc = function Div _ -> true | _ -> acc in
  fold check false e

let uses_sqrt e =
  let check acc = function Sqrt _ -> true | _ -> acc in
  fold check false e

(* ------------------------------------------------------------------ *)
(* Associativity analysis (paper §3, §4.1)                             *)
(* ------------------------------------------------------------------ *)

(** The plane of an offset: its coordinate along the streaming dimension
    (dimension 0 in our layout). *)
let plane_of_offset (o : int array) = o.(0)

(** An expression is "associative" in the paper's sense when it can be
    computed by partial summation over sub-planes: it must be a sum of
    terms, each term reading cells from a single sub-plane, possibly
    wrapped in one final cheap post-operation (division by an invariant).
    Star stencils are handled by the separate diagonal-access-free path,
    but they are also associative by this definition. *)
let rec sum_terms = function
  | Add (a, b) -> Option.bind (sum_terms a) (fun ta -> Option.map (fun tb -> ta @ tb) (sum_terms b))
  | e -> Some [ e ]

let term_planes term =
  List.sort_uniq Int.compare (List.map plane_of_offset (offsets term))

let is_associative e =
  let body = match e with Div (num, (Param _ | Const _ | Coef _)) -> num | _ -> e in
  match sum_terms body with
  | None -> false
  | Some terms -> List.for_all (fun t -> List.length (term_planes t) <= 1) terms

(** Group the summands by sub-plane for partial summation: returns
    [(plane, partial_expr) list] plus the post-operation to apply to the
    completed sum, or [None] if the expression is not associative. *)
let partial_sums e =
  let body, post =
    match e with
    | Div (num, (Param _ as d)) -> (num, fun s -> Div (s, d))
    | Div (num, (Const _ as d)) -> (num, fun s -> Div (s, d))
    | _ -> (e, Fun.id)
  in
  match sum_terms body with
  | None -> None
  | Some terms ->
      let tbl = Hashtbl.create 8 in
      let ok =
        List.for_all
          (fun t ->
            match term_planes t with
            | [] | [ _ ] ->
                let plane = match term_planes t with [ p ] -> p | _ -> 0 in
                Hashtbl.replace tbl plane
                  (match Hashtbl.find_opt tbl plane with
                  | Some prev -> Add (prev, t)
                  | None -> t);
                true
            | _ :: _ :: _ -> false)
          terms
      in
      if not ok then None
      else
        let groups =
          Hashtbl.fold (fun p e acc -> (p, e) :: acc) tbl []
          |> List.sort (fun (a, _) (b, _) -> Int.compare a b)
        in
        Some (groups, post)

(* ------------------------------------------------------------------ *)
(* Evaluation                                                          *)
(* ------------------------------------------------------------------ *)

(** Deterministic compile-time value of a symbolic coefficient: a stable
    pseudo-random value in [0.05, 0.2) derived from the offset, scaled so
    weighted sums over up-to-9^3 points stay O(1) and iterated updates
    remain numerically stable. *)
let coef_value (o : int array) =
  let h = Array.fold_left (fun acc x -> (acc * 31) + x + 17) 7 o in
  let u = float (abs h mod 1000) /. 1000.0 in
  0.05 +. (0.15 *. u)

(** Compile to a closure evaluating the update; [param] resolves scalar
    parameters once at compile time, [read] fetches the previous
    time-step at an offset. Compiling once per pattern keeps executor
    inner loops free of AST matching. *)
let compile ~(param : string -> float) e : (int array -> float) -> float =
  let rec go = function
    | Const c -> fun _ -> c
    | Coef o ->
        let v = coef_value o in
        fun _ -> v
    | Param p ->
        let v = param p in
        fun _ -> v
    | Cell o ->
        let o = Array.copy o in
        fun read -> read o
    | Neg a ->
        let fa = go a in
        fun read -> -.fa read
    | Add (a, b) ->
        let fa = go a and fb = go b in
        fun read -> fa read +. fb read
    | Sub (a, b) ->
        let fa = go a and fb = go b in
        fun read -> fa read -. fb read
    | Mul (a, b) ->
        let fa = go a and fb = go b in
        fun read -> fa read *. fb read
    | Div (a, b) ->
        let fa = go a and fb = go b in
        fun read -> fa read /. fb read
    | Sqrt a ->
        let fa = go a in
        fun read -> sqrt (fa read)
  in
  go e

(** Compile the partial-summation evaluation of an associative
    expression: per-plane compiled closures (ascending plane order) and
    the numeric post-operation. The summation order — groups added in
    ascending plane order — is exactly the order AN5D's generated CALC
    macros accumulate partial sums as source sub-planes stream by
    (§4.1), which differs from the source expression's order and hence
    rounds differently; the artifact reports the same effect (§A.6). *)
let compile_partial_sums ~(param : string -> float) e =
  match partial_sums e with
  | None -> None
  | Some (groups, _post) ->
      let post =
        match e with
        | Div (_, Param p) ->
            let d = param p in
            fun s -> s /. d
        | Div (_, Const d) -> fun s -> s /. d
        | Div (_, Coef o) ->
            let d = coef_value o in
            fun s -> s /. d
        | _ -> Fun.id
      in
      let compiled =
        List.map (fun (plane, g) -> (plane, compile ~param g)) groups
      in
      Some (compiled, post)

(* ------------------------------------------------------------------ *)
(* Flat lowering (the compiled-plan layer)                             *)
(* ------------------------------------------------------------------ *)

(** Compile to a closure reading cells by *index* into a fixed offsets
    table instead of by offset array. The closure tree is identical to
    {!compile}'s — same operations, same order, same rounding — so given
    a reader with [read (index_of o) = read_by_offset o] the result is
    bit-identical. [index] resolves each [Cell] offset once at compile
    time, which is what lets executors replace per-cell offset
    arithmetic with table lookups. *)
let compile_indexed ~(param : string -> float) ~(index : int array -> int) e :
    (int -> float) -> float =
  let rec go = function
    | Const c -> fun _ -> c
    | Coef o ->
        let v = coef_value o in
        fun _ -> v
    | Param p ->
        let v = param p in
        fun _ -> v
    | Cell o ->
        let k = index o in
        fun read -> read k
    | Neg a ->
        let fa = go a in
        fun read -> -.fa read
    | Add (a, b) ->
        let fa = go a and fb = go b in
        fun read -> fa read +. fb read
    | Sub (a, b) ->
        let fa = go a and fb = go b in
        fun read -> fa read -. fb read
    | Mul (a, b) ->
        let fa = go a and fb = go b in
        fun read -> fa read *. fb read
    | Div (a, b) ->
        let fa = go a and fb = go b in
        fun read -> fa read /. fb read
    | Sqrt a ->
        let fa = go a in
        fun read -> sqrt (fa read)
  in
  go e

type post_op = Post_none | Post_div of float

(** Fully flattened linear combination: term [k] reads the cell at
    offsets-table index [lt_off.(k)] and contributes it scaled by
    [lt_coef.(k)] when [lt_scaled.(k)] (bare reads contribute the value
    itself — skipping the multiplication keeps [1.0 *. x] rounding
    questions out of the bit-identity argument). A term with
    [lt_off2.(k) >= 0] is a folded symmetric pair [c * (a + b)] (§4.2):
    the second read is added to the first *before* the optional scaling,
    exactly how the source tree [Mul (c, Add (a, b))] evaluates, so the
    fold is a coverage extension rather than a reassociation. Terms are
    accumulated left to right starting from term 0, exactly the
    left-leaning [Add] spine {!weighted_sum} builds, then [lt_post]
    applies. *)
type linear_form = {
  lt_off : int array;
  lt_off2 : int array;  (** second read of a folded pair, [-1] if unpaired *)
  lt_coef : float array;
  lt_scaled : bool array;
  lt_post : post_op;
}

(** One per-plane partial-sum group of the §4.1 associative dataflow:
    the flat form when the group is a pure linear combination, plus the
    indexed closure that always works. *)
type plane_group = {
  g_plane : int;
  g_linear : linear_form option;
  g_eval : (int -> float) -> float;
}

(** Which specialized streaming kernel a lowered expression dispatches
    to (docs/SIMULATOR.md): fully unrolled fused kernels for the small
    star/box arities, a chunked wide kernel for larger linear forms, a
    pair-aware kernel when symmetric folding produced [c*(a+b)] terms,
    and the generic per-term interpreter otherwise. Classification is
    static metadata from lowering — executors agree on it by
    construction. *)
type kernel_shape =
  | K_fused of int  (** fully unrolled; arity in {3,5,7,9} *)
  | K_wide of int  (** chunked accumulation for any other linear arity *)
  | K_folded of int  (** pair-aware; the int counts distinct points read *)
  | K_generic  (** no flat linear form — per-term fallback *)

let kernel_shape_of_linear = function
  | None -> K_generic
  | Some lf ->
      let terms = Array.length lf.lt_off in
      let pairs =
        Array.fold_left (fun n k2 -> if k2 >= 0 then n + 1 else n) 0 lf.lt_off2
      in
      if pairs > 0 then K_folded (terms + pairs)
      else if terms = 3 || terms = 5 || terms = 7 || terms = 9 then K_fused terms
      else K_wide terms

let kernel_shape_name = function
  | K_fused n -> Printf.sprintf "fused%dpt" n
  | K_wide n -> Printf.sprintf "wide%dpt" n
  | K_folded n -> Printf.sprintf "folded%dpt" n
  | K_generic -> "generic"

(** Everything an executor inner loop needs, precompiled: the distinct
    offsets (the read index space), an indexed closure bit-identical to
    {!compile}, the flat linear form when the expression is a
    left-leaning weighted sum (with an optional invariant-divisor
    post-op), the streaming-kernel classification derived from it, and
    the partial-summation groups mirroring {!compile_partial_sums}. *)
type lowered = {
  low_offsets : int array array;
  low_eval : (int -> float) -> float;
  low_linear : linear_form option;
  low_kernel : kernel_shape;
  low_partial : (plane_group array * (float -> float)) option;
}

let apply_post p v = match p with Post_none -> v | Post_div d -> v /. d

(** Evaluate a linear form against an indexed reader — the same
    accumulation the executors inline. *)
let eval_linear (lf : linear_form) (read : int -> float) =
  let term k =
    let v = read lf.lt_off.(k) in
    let k2 = lf.lt_off2.(k) in
    let v = if k2 >= 0 then v +. read k2 else v in
    if lf.lt_scaled.(k) then lf.lt_coef.(k) *. v else v
  in
  let acc = ref (term 0) in
  for k = 1 to Array.length lf.lt_off - 1 do
    acc := !acc +. term k
  done;
  apply_post lf.lt_post !acc

(* The left spine of nested [Add]s, in evaluation order: the flat loop
   [((t0 + t1) + t2) + ...] rounds identically to the closure tree only
   on a left-leaning spine, so a right-nested [Add] stays one (opaque)
   term and linearization fails over to the indexed closure. *)
let rec add_spine acc = function
  | Add (a, b) -> add_spine (b :: acc) a
  | e -> e :: acc

let scalar_value ~param = function
  | Coef o -> Some (coef_value o)
  | Param p -> Some (param p)
  | Const c -> Some c
  | _ -> None

(* One linear term as (off, off2, coef, scaled): [Cell], or
   [scalar * Cell] either way round (IEEE 754 multiplication commutes
   bit-exactly), or a folded symmetric pair — [Add (Cell a, Cell b)],
   bare or scaled. The pair cases evaluate as [c *. (va +. vb)], exactly
   the shape of the source sub-tree, so flattening them preserves
   rounding while extending the fast path to §4.2-style
   symmetric-coefficient stencils. *)
let linear_term ~param ~index = function
  | Cell o -> Some (index o, -1, 0.0, false)
  | Add (Cell a, Cell b) -> Some (index a, index b, 0.0, false)
  | Mul (s, Cell o) | Mul (Cell o, s) -> (
      match scalar_value ~param s with
      | Some c -> Some (index o, -1, c, true)
      | None -> None)
  | Mul (s, Add (Cell a, Cell b)) | Mul (Add (Cell a, Cell b), s) -> (
      match scalar_value ~param s with
      | Some c -> Some (index a, index b, c, true)
      | None -> None)
  | _ -> None

let linearize_sum ~param ~index ~post body =
  let terms = add_spine [] body in
  let lowered = List.map (linear_term ~param ~index) terms in
  if List.exists Option.is_none lowered then None
  else
    let ts = Array.of_list (List.map Option.get lowered) in
    Some
      {
        lt_off = Array.map (fun (o, _, _, _) -> o) ts;
        lt_off2 = Array.map (fun (_, o2, _, _) -> o2) ts;
        lt_coef = Array.map (fun (_, _, c, _) -> c) ts;
        lt_scaled = Array.map (fun (_, _, _, s) -> s) ts;
        lt_post = post;
      }

(** Lower an expression for table-driven execution. The indexed closure
    is always bit-identical to {!compile}; the linear form, when
    present, reproduces the closure's rounding exactly (left-spine
    accumulation, divisor applied last, matching how {!compile}
    evaluates [Div (sum, invariant)]). *)
let lower ~(param : string -> float) e =
  let offs = Array.of_list (offsets e) in
  let tbl = Hashtbl.create 16 in
  Array.iteri (fun k o -> Hashtbl.replace tbl o k) offs;
  let index o =
    match Hashtbl.find_opt tbl o with
    | Some k -> k
    | None -> invalid_arg "Sexpr.lower: offset not in table"
  in
  let low_linear =
    match e with
    | Div (body, ((Param _ | Const _ | Coef _) as d)) ->
        linearize_sum ~param ~index
          ~post:(Post_div (Option.get (scalar_value ~param d)))
          body
    | _ -> linearize_sum ~param ~index ~post:Post_none e
  in
  let low_partial =
    match partial_sums e with
    | None -> None
    | Some (groups, _sym_post) ->
        (* the numeric post mirrors compile_partial_sums exactly *)
        let post =
          match e with
          | Div (_, Param p) ->
              let d = param p in
              fun s -> s /. d
          | Div (_, Const d) -> fun s -> s /. d
          | Div (_, Coef o) ->
              let d = coef_value o in
              fun s -> s /. d
          | _ -> Fun.id
        in
        let gs =
          List.map
            (fun (plane, g) ->
              {
                g_plane = plane;
                g_linear = linearize_sum ~param ~index ~post:Post_none g;
                g_eval = compile_indexed ~param ~index g;
              })
            groups
        in
        Some (Array.of_list gs, post)
  in
  {
    low_offsets = offs;
    low_eval = compile_indexed ~param ~index e;
    low_linear;
    low_kernel = kernel_shape_of_linear low_linear;
    low_partial;
  }

(* ------------------------------------------------------------------ *)
(* Printing                                                            *)
(* ------------------------------------------------------------------ *)

let rec pp ppf = function
  | Const c -> Fmt.float ppf c
  | Coef o -> Fmt.pf ppf "c%a" Shape.pp_offset o
  | Param p -> Fmt.string ppf p
  | Cell o -> Fmt.pf ppf "f%a" Shape.pp_offset o
  | Neg a -> Fmt.pf ppf "(-%a)" pp a
  | Add (a, b) -> Fmt.pf ppf "(%a + %a)" pp a pp b
  | Sub (a, b) -> Fmt.pf ppf "(%a - %a)" pp a pp b
  | Mul (a, b) -> Fmt.pf ppf "(%a * %a)" pp a pp b
  | Div (a, b) -> Fmt.pf ppf "(%a / %a)" pp a pp b
  | Sqrt a -> Fmt.pf ppf "sqrt(%a)" pp a

let to_string e = Fmt.str "%a" pp e
