(** Naive reference executor.

    Runs the stencil exactly as the C input describes it: a time loop
    around a full sweep of the interior, double-buffered. Every optimized
    executor in this repository is bit-compared against this one (the
    paper's artifact likewise verifies GPU output against CPU-only
    execution, §A.6).

    Three sweep implementations produce bit-identical grids: [Compiled]
    (default) walks the interior with linear indices and per-offset
    linear deltas off the lowered expression ({!Pattern.lower}), through
    bounds-checked monomorphic buffer access; [Bigarray] is the same
    sweep with [Bigarray.Array1.unsafe_get/unsafe_set] once the peeling
    invariant has been validated for the whole sweep (see below);
    [Closure] is the legacy per-cell path through bounds-checked
    multi-index reads. The differential tests compare all three. *)

type impl = Compiled | Closure | Bigarray

(* One-entry lowering cache: verification loops call [step]/[run] many
   times with the same pattern value, and patterns are immutable, so
   physical equality identifies a reusable lowering. Worst case on a
   race or a miss is a recompute. *)
let lower_cache : (Pattern.t * Sexpr.lowered) option Atomic.t = Atomic.make None

let lowered_of pattern =
  match Atomic.get lower_cache with
  | Some (p, low) when p == pattern -> low
  | _ ->
      let low = Pattern.lower pattern in
      Atomic.set lower_cache (Some (pattern, low));
      low

let check_step pattern ~(src : Grid.t) ~(dst : Grid.t) =
  if src.Grid.dims <> dst.Grid.dims then invalid_arg "Reference.step: dim mismatch";
  if Array.length src.Grid.dims <> pattern.Pattern.dims then
    invalid_arg "Reference.step: grid rank does not match pattern"

(* Legacy per-cell sweep: offset reads through bounds-checked
   multi-index access, the update as a compiled closure. *)
let step_closure pattern ~(src : Grid.t) ~(dst : Grid.t) =
  let rad = pattern.Pattern.radius in
  let update = Pattern.compile pattern in
  let interior = Grid.interior ~rad src in
  (* Copy first so halo cells are preserved; interior writes overwrite. *)
  Grid.blit ~src ~dst;
  let idx_buf = Array.make pattern.Pattern.dims 0 in
  Poly.Box.iter
    (fun idx ->
      let read off =
        Array.iteri (fun d i -> idx_buf.(d) <- i + off.(d)) idx;
        Grid.get src idx_buf
      in
      Grid.set dst idx (update read))
    interior

(* Flat sweep: each stencil offset becomes one linear delta against the
   cell's row-major position, the interior is walked recursively with
   the innermost dimension contiguous, and the lowered expression is
   evaluated inline (flat weighted-sum terms when available, the indexed
   closure otherwise). Reads the same values and performs the same
   arithmetic in the same order as [step_closure], so bit-identical.

   The inner rows are monomorphic per precision: the buffer constructor
   is matched once per sweep, so inside each row the element kind is
   statically known and bigarray access compiles to direct loads.

   [~unsafe:true] additionally switches the rows to unchecked indexing,
   guarded by a once-per-sweep proof of the peeling invariant: every
   interior linear position lies in [min_pos, max_pos] (strides are
   positive and interior multi-indices are coordinate-wise between the
   all-[rad] and all-[dim-rad-1] corners), so if [min_pos + delta] and
   [max_pos + delta] are in range for every lowered offset, every
   unsafe access of the sweep is in bounds. Boundary cells never enter
   the sweep — they are blitted up front (checked path). If the proof
   fails (it cannot for offsets within the pattern radius), the sweep
   silently falls back to the checked rows. *)
let step_lowered ~unsafe (low : Sexpr.lowered) ~rad ~(src : Grid.t) ~(dst : Grid.t) =
  let dims = src.Grid.dims in
  let strides = src.Grid.strides in
  let n = Array.length dims in
  let offs = low.Sexpr.low_offsets in
  let delta =
    Array.map
      (fun off ->
        let d = ref 0 in
        Array.iteri (fun i o -> d := !d + (o * strides.(i))) off;
        !d)
      offs
  in
  Grid.blit ~src ~dst;
  let last = dims.(n - 1) in
  let interior_nonempty = Array.for_all (fun d -> d - (2 * rad) > 0) dims in
  let unsafe_ok =
    unsafe && interior_nonempty
    &&
    let min_pos = ref 0 and max_pos = ref 0 in
    for d = 0 to n - 1 do
      min_pos := !min_pos + (rad * strides.(d));
      max_pos := !max_pos + ((dims.(d) - rad - 1) * strides.(d))
    done;
    let size = Grid.size src in
    Array.for_all (fun dl -> !min_pos + dl >= 0 && !max_pos + dl < size) delta
  in
  let rec walk row d base =
    if d = n - 1 then row base
    else
      for i = rad to dims.(d) - rad - 1 do
        walk row (d + 1) (base + (i * strides.(d)))
      done
  in
  match low.Sexpr.low_linear with
  | Some lf ->
      let lt_off = lf.Sexpr.lt_off in
      let lt_off2 = lf.Sexpr.lt_off2 in
      let lt_coef = lf.Sexpr.lt_coef in
      let lt_scaled = lf.Sexpr.lt_scaled in
      let n_terms = Array.length lt_off in
      let has_div, div =
        match lf.Sexpr.lt_post with
        | Sexpr.Post_none -> (false, 1.0)
        | Sexpr.Post_div dv -> (true, dv)
      in
      (* Folded-pair terms (lt_off2 >= 0) read the mirror cell and add it
         before the optional scaling — same shape as the source tree. *)
      let checked_row_f64 (s : Grid.f64buf) (d : Grid.f64buf) base =
        for pos = base + rad to base + last - rad - 1 do
          let k0 = lt_off.(0) in
          let v0 = Bigarray.Array1.get s (pos + delta.(k0)) in
          let k2 = lt_off2.(0) in
          let v0 =
            if k2 >= 0 then v0 +. Bigarray.Array1.get s (pos + delta.(k2)) else v0
          in
          let acc = ref (if lt_scaled.(0) then lt_coef.(0) *. v0 else v0) in
          for q = 1 to n_terms - 1 do
            let k = lt_off.(q) in
            let v = Bigarray.Array1.get s (pos + delta.(k)) in
            let k2 = lt_off2.(q) in
            let v =
              if k2 >= 0 then v +. Bigarray.Array1.get s (pos + delta.(k2)) else v
            in
            acc := !acc +. (if lt_scaled.(q) then lt_coef.(q) *. v else v)
          done;
          Bigarray.Array1.set d pos (if has_div then !acc /. div else !acc)
        done
      in
      let checked_row_f32 (s : Grid.f32buf) (d : Grid.f32buf) base =
        for pos = base + rad to base + last - rad - 1 do
          let k0 = lt_off.(0) in
          let v0 = Bigarray.Array1.get s (pos + delta.(k0)) in
          let k2 = lt_off2.(0) in
          let v0 =
            if k2 >= 0 then v0 +. Bigarray.Array1.get s (pos + delta.(k2)) else v0
          in
          let acc = ref (if lt_scaled.(0) then lt_coef.(0) *. v0 else v0) in
          for q = 1 to n_terms - 1 do
            let k = lt_off.(q) in
            let v = Bigarray.Array1.get s (pos + delta.(k)) in
            let k2 = lt_off2.(q) in
            let v =
              if k2 >= 0 then v +. Bigarray.Array1.get s (pos + delta.(k2)) else v
            in
            acc := !acc +. (if lt_scaled.(q) then lt_coef.(q) *. v else v)
          done;
          Bigarray.Array1.set d pos (if has_div then !acc /. div else !acc)
        done
      in
      let unsafe_row_f64 (s : Grid.f64buf) (d : Grid.f64buf) base =
        for pos = base + rad to base + last - rad - 1 do
          let k0 = Array.unsafe_get lt_off 0 in
          let v0 = Bigarray.Array1.unsafe_get s (pos + Array.unsafe_get delta k0) in
          let k2 = Array.unsafe_get lt_off2 0 in
          let v0 =
            if k2 >= 0 then
              v0 +. Bigarray.Array1.unsafe_get s (pos + Array.unsafe_get delta k2)
            else v0
          in
          let acc =
            ref
              (if Array.unsafe_get lt_scaled 0 then
                 Array.unsafe_get lt_coef 0 *. v0
               else v0)
          in
          for q = 1 to n_terms - 1 do
            let k = Array.unsafe_get lt_off q in
            let v = Bigarray.Array1.unsafe_get s (pos + Array.unsafe_get delta k) in
            let k2 = Array.unsafe_get lt_off2 q in
            let v =
              if k2 >= 0 then
                v +. Bigarray.Array1.unsafe_get s (pos + Array.unsafe_get delta k2)
              else v
            in
            acc :=
              !acc
              +. (if Array.unsafe_get lt_scaled q then Array.unsafe_get lt_coef q *. v
                  else v)
          done;
          Bigarray.Array1.unsafe_set d pos (if has_div then !acc /. div else !acc)
        done
      in
      let unsafe_row_f32 (s : Grid.f32buf) (d : Grid.f32buf) base =
        for pos = base + rad to base + last - rad - 1 do
          let k0 = Array.unsafe_get lt_off 0 in
          let v0 = Bigarray.Array1.unsafe_get s (pos + Array.unsafe_get delta k0) in
          let k2 = Array.unsafe_get lt_off2 0 in
          let v0 =
            if k2 >= 0 then
              v0 +. Bigarray.Array1.unsafe_get s (pos + Array.unsafe_get delta k2)
            else v0
          in
          let acc =
            ref
              (if Array.unsafe_get lt_scaled 0 then
                 Array.unsafe_get lt_coef 0 *. v0
               else v0)
          in
          for q = 1 to n_terms - 1 do
            let k = Array.unsafe_get lt_off q in
            let v = Bigarray.Array1.unsafe_get s (pos + Array.unsafe_get delta k) in
            let k2 = Array.unsafe_get lt_off2 q in
            let v =
              if k2 >= 0 then
                v +. Bigarray.Array1.unsafe_get s (pos + Array.unsafe_get delta k2)
              else v
            in
            acc :=
              !acc
              +. (if Array.unsafe_get lt_scaled q then Array.unsafe_get lt_coef q *. v
                  else v)
          done;
          Bigarray.Array1.unsafe_set d pos (if has_div then !acc /. div else !acc)
        done
      in
      (match (src.Grid.buf, dst.Grid.buf) with
      | Grid.B64 s, Grid.B64 d ->
          walk (if unsafe_ok then unsafe_row_f64 s d else checked_row_f64 s d) 0 0
      | Grid.B32 s, Grid.B32 d ->
          walk (if unsafe_ok then unsafe_row_f32 s d else checked_row_f32 s d) 0 0
      | _ -> invalid_arg "Reference.step: src/dst precision mismatch")
  | None ->
      let eval = low.Sexpr.low_eval in
      let pos_ref = ref 0 in
      let read k = Grid.get_lin src (!pos_ref + delta.(k)) in
      let row base =
        for pos = base + rad to base + last - rad - 1 do
          pos_ref := pos;
          Grid.set_lin dst pos (eval read)
        done
      in
      walk row 0 0

(** Apply one time-step: reads [src], writes [dst]. Boundary cells (those
    whose neighborhood leaves the grid) are copied unchanged — they hold
    the boundary condition. *)
let step ?(impl = Compiled) pattern ~(src : Grid.t) ~(dst : Grid.t) =
  check_step pattern ~src ~dst;
  match impl with
  | Closure -> step_closure pattern ~src ~dst
  | Compiled ->
      step_lowered ~unsafe:false (lowered_of pattern) ~rad:pattern.Pattern.radius
        ~src ~dst
  | Bigarray ->
      step_lowered ~unsafe:true (lowered_of pattern) ~rad:pattern.Pattern.radius
        ~src ~dst

(** Run [steps] time-steps starting from [g]; returns the final grid.
    Matches the C semantics: with double buffering the result of step [s]
    lands in buffer [s mod 2]; we return whichever buffer holds the final
    values. The lowering is hoisted out of the time loop. *)
let run ?(impl = Compiled) pattern ~steps g =
  if steps < 0 then invalid_arg "Reference.run: negative step count";
  let a = Grid.copy g in
  let b = Grid.copy g in
  let cur = ref a and nxt = ref b in
  let do_step =
    match impl with
    | Closure ->
        fun ~src ~dst ->
          check_step pattern ~src ~dst;
          step_closure pattern ~src ~dst
    | Compiled | Bigarray ->
        let unsafe = impl = Bigarray in
        let low = lowered_of pattern in
        let rad = pattern.Pattern.radius in
        fun ~src ~dst ->
          check_step pattern ~src ~dst;
          step_lowered ~unsafe low ~rad ~src ~dst
  in
  for _ = 1 to steps do
    do_step ~src:!cur ~dst:!nxt;
    let t = !cur in
    cur := !nxt;
    nxt := t
  done;
  !cur

(** FLOPs performed by [steps] sweeps (interior cells only) — the
    denominator convention used for GFLOP/s everywhere in the paper. *)
let total_flops pattern ~dims ~steps =
  let interior = Poly.Box.shrink pattern.Pattern.radius (Poly.Box.of_dims dims) in
  float (Poly.Box.volume interior)
  *. float (Pattern.flops_per_cell pattern)
  *. float steps
