(** Stencil shapes (paper §2.1).

    A shape is described by the set of spatial offsets the update reads
    from the previous time-step. [Star] stencils only access neighbors
    along one axis at a time (diagonal-access free); [Box] stencils read
    the full [(2*rad+1)^N] cube; anything else is [General]. *)

type kind = Star | Box | General

let kind_to_string = function Star -> "star" | Box -> "box" | General -> "general"

let pp_kind ppf k = Fmt.string ppf (kind_to_string k)

(** Exact integer power by squaring. Point counts like [(2*rad+1)^N]
    must stay exact — [int_of_float (float b ** float e)] drifts once
    the result exceeds 2^53. *)
let ipow b e =
  if e < 0 then invalid_arg "Shape.ipow: negative exponent";
  let rec go acc b e =
    if e = 0 then acc else go (if e land 1 = 1 then acc * b else acc) (b * b) (e lsr 1)
  in
  go 1 b e

(** Number of nonzero components of an offset. *)
let nonzero_components o = Array.fold_left (fun n x -> if x = 0 then n else n + 1) 0 o

let is_axial o = nonzero_components o <= 1

(** Radius: the Chebyshev norm of the farthest offset. *)
let radius offsets =
  List.fold_left
    (fun r o -> Array.fold_left (fun r x -> max r (abs x)) r o)
    0 offsets

let compare_offsets (a : int array) (b : int array) = Stdlib.compare a b

let sort_offsets offsets = List.sort_uniq compare_offsets offsets

(** All offsets of a star of radius [rad] in [dims] dimensions (the center
    plus [2*rad] points per axis). *)
let star_offsets ~dims ~rad =
  let center = Array.make dims 0 in
  let axial =
    List.concat_map
      (fun d ->
        List.concat_map
          (fun k ->
            if k = 0 then []
            else
              let o = Array.make dims 0 in
              o.(d) <- k;
              [ o ])
          (List.init ((2 * rad) + 1) (fun i -> i - rad)))
      (List.init dims Fun.id)
  in
  sort_offsets (center :: axial)

(** All offsets of the full box of radius [rad] in [dims] dimensions. *)
let box_offsets ~dims ~rad =
  let rec go d =
    if d = 0 then [ [] ]
    else
      let rest = go (d - 1) in
      List.concat_map
        (fun k -> List.map (fun tl -> k :: tl) rest)
        (List.init ((2 * rad) + 1) (fun i -> i - rad))
  in
  sort_offsets (List.map Array.of_list (go dims))

(** Classify a set of offsets. A [Star] has only axial accesses; a [Box]
    is exactly the full cube of its radius; everything else is
    [General]. A star of radius 0 (single point) is classified [Star]. *)
let classify offsets =
  let offsets = sort_offsets offsets in
  match offsets with
  | [] -> General
  | first :: _ ->
      let dims = Array.length first in
      let rad = radius offsets in
      if List.for_all is_axial offsets then Star
      else if List.length offsets = List.length (box_offsets ~dims ~rad)
              && List.equal (fun a b -> compare_offsets a b = 0) offsets
                   (box_offsets ~dims ~rad)
      then Box
      else General

let pp_offset ppf o = Fmt.pf ppf "(%a)" Fmt.(array ~sep:(any ",") int) o
