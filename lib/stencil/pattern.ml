(** A detected stencil pattern: the unit AN5D compiles and optimizes.

    Bundles the spatial shape, update expression and the §4.1/§4.2
    classification that drives optimization selection:
    - [Diag_free]    — star stencils: upper/lower sub-planes live in
                       registers, shared memory only for the center plane;
    - [Associative]  — box-like stencils computable by per-plane partial
                       sums: same shared-memory footprint as stars;
    - [General]      — everything else: [1 + 2*rad] planes in shared
                       memory. *)

type opt_class = Diag_free | Associative | General_box

let opt_class_to_string = function
  | Diag_free -> "diagonal-access-free"
  | Associative -> "associative"
  | General_box -> "general"

type t = {
  name : string;
  dims : int;  (** number of spatial dimensions N *)
  radius : int;
  shape : Shape.kind;
  expr : Sexpr.t;
  offsets : int array list;  (** cells read, sorted *)
  params : (string * float) list;  (** scalar parameter values, e.g. c0 *)
}

let validate t =
  if t.dims < 1 then invalid_arg "Pattern: dims must be >= 1";
  List.iter
    (fun o ->
      if Array.length o <> t.dims then
        invalid_arg "Pattern: offset rank does not match dims")
    t.offsets;
  if Shape.radius t.offsets <> t.radius then
    invalid_arg "Pattern: radius does not match offsets";
  t

let make ~name ~dims ~params expr =
  let offsets = Sexpr.offsets expr in
  let radius = Shape.radius offsets in
  let shape = Shape.classify offsets in
  validate { name; dims; radius; shape; expr; offsets; params }

(** Optimization class (§4.1): stars are diagonal-access free; among the
    rest, expressions computable by per-plane partial summation are
    associative. *)
let opt_class t =
  match t.shape with
  | Shape.Star -> Diag_free
  | Shape.Box | Shape.General ->
      if Sexpr.is_associative t.expr then Associative else General_box

let flops_per_cell t = Sexpr.flops t.expr

let ops_per_cell t = Sexpr.classify_ops t.expr

let uses_division t = Sexpr.uses_division t.expr

let param_value t name =
  match List.assoc_opt name t.params with
  | Some v -> v
  | None -> invalid_arg (Fmt.str "Pattern %s: unbound parameter %s" t.name name)

(** Compile the update into a closure over an offset reader. *)
let compile t = Sexpr.compile ~param:(param_value t) t.expr

(** Lower the update for table-driven execution (the compiled-plan
    layer); every path is bit-identical to {!compile}. *)
let lower t = Sexpr.lower ~param:(param_value t) t.expr

(** Dependence vectors of the stencil (for legality checks). *)
let dependences t = Poly.Dependence.of_offsets t.offsets

(** Offsets grouped by sub-plane (coordinate along the streaming
    dimension), ascending; used by the N.5D executor and codegen. *)
let offsets_by_plane t =
  let tbl = Hashtbl.create 8 in
  List.iter
    (fun o ->
      let p = o.(0) in
      Hashtbl.replace tbl p (o :: (Option.value ~default:[] (Hashtbl.find_opt tbl p))))
    t.offsets;
  Hashtbl.fold (fun p os acc -> (p, List.rev os) :: acc) tbl []
  |> List.sort (fun (a, _) (b, _) -> Int.compare a b)

(** Largest in-plane (non-streaming) offset distance; determines how much
    in-plane halo each shared-memory tile needs. *)
let inplane_radius t =
  List.fold_left
    (fun r o ->
      let m = ref 0 in
      for d = 1 to Array.length o - 1 do
        m := max !m (abs o.(d))
      done;
      max r !m)
    0 t.offsets

let pp ppf t =
  Fmt.pf ppf "%s: %dD %a rad=%d %s, %d points, %d flop/cell" t.name t.dims
    Shape.pp_kind t.shape t.radius
    (opt_class_to_string (opt_class t))
    (List.length t.offsets) (flops_per_cell t)
