(** Stencil shapes (paper §2.1): star (axial accesses only), box (the
    full [(2*rad+1)^N] cube), or general. *)

type kind = Star | Box | General

val kind_to_string : kind -> string

val ipow : int -> int -> int
(** [ipow b e] is exactly [b{^e}] by integer squaring — unlike
    [int_of_float (float b ** float e)], which drifts past 2{^53}.
    @raise Invalid_argument on a negative exponent. *)

val pp_kind : Format.formatter -> kind -> unit

val nonzero_components : int array -> int

val is_axial : int array -> bool
(** At most one nonzero component (no diagonal access). *)

val radius : int array list -> int
(** Chebyshev norm of the farthest offset. *)

val compare_offsets : int array -> int array -> int

val sort_offsets : int array list -> int array list
(** Sort and deduplicate. *)

val star_offsets : dims:int -> rad:int -> int array list
(** The center plus [2*rad] points per axis ([2*rad*dims + 1] total). *)

val box_offsets : dims:int -> rad:int -> int array list
(** The full cube ([(2*rad+1)^dims] points). *)

val classify : int array list -> kind
(** [Star] if all accesses are axial; [Box] if exactly the full cube of
    the offsets' radius; [General] otherwise. *)

val pp_offset : Format.formatter -> int array -> unit
