(** Structured span tracing for the simulator.

    A span is a named, timed interval of work; spans nest, forming one
    tree per *lane* (per OCaml domain — the {!Gpu.Pool} workers record
    into their own lanes without synchronizing on the hot path). The
    tracer is a process-wide sink that is disabled by default:
    {!with_span} on a disabled tracer is one atomic load and a branch,
    so instrumentation can stay in the hot paths permanently.

    Recorded spans are exported as Chrome [trace_event] JSON by
    {!Export.chrome_json} (loadable in Perfetto / [about:tracing]) or
    inspected directly via {!events}. See docs/OBSERVABILITY.md for the
    span taxonomy the simulator emits. *)

(** Attribute values attached to a span (rendered into the Chrome
    event's [args]). *)
type attr = Str of string | Int of int | Float of float | Bool of bool

type span = {
  id : int;  (** unique, allocated in begin order across all lanes *)
  parent : int;  (** id of the enclosing span on the same lane, or -1 *)
  lane : int;  (** the recording lane (Chrome [tid]) *)
  name : string;
  mutable attrs : (string * attr) list;
  t_begin : float;  (** microseconds since the tracer's epoch *)
  mutable t_end : float;
  seq_begin : int;  (** per-lane action sequence of the begin *)
  mutable seq_end : int;  (** per-lane action sequence of the end *)
}

val enabled : unit -> bool

val set_enabled : bool -> unit
(** Enable or disable recording. Spans already open keep recording
    their end; new {!with_span} calls on a disabled tracer record
    nothing and add near-zero cost. *)

val clear : unit -> unit
(** Drop all recorded spans (all lanes). Call between runs you want to
    trace separately, while no spans are open. *)

val with_span : ?attrs:(string * attr) list -> string -> (unit -> 'a) -> 'a
(** [with_span ?attrs name f] runs [f ()] inside a span. The span ends
    when [f] returns or raises; the function's value (or exception)
    passes through unchanged. Disabled tracer: exactly [f ()]. *)

val add_attrs : (string * attr) list -> unit
(** Append attributes to the innermost open span of the calling lane
    (for values only known mid-span, e.g. a measured GFLOP/s). No-op
    when disabled or outside any span. *)

val events : unit -> span list
(** All recorded spans, merged across lanes, sorted by [id] (begin
    order). Quiesce worker domains before calling; reading while other
    lanes record is racy. *)

val span_count : unit -> int

val with_tracing : (unit -> 'a) -> 'a * span list
(** [with_tracing f]: clear, enable, run [f], disable; returns [f]'s
    value and the recorded spans. Test/tooling convenience. *)
