(** Structured span tracing (see the interface for the model).

    Design notes:

    - The enabled flag is an [Atomic.t] checked before anything else;
      a disabled {!with_span} is one load and a branch around [f ()].
    - Every domain that traces gets a private *lane*: a span stack (for
      parent ids), a list of recorded spans, a per-lane action sequence
      (so the exporter can replay begins and ends in exactly the order
      they happened without timestamp tie-breaking), and a clamp that
      keeps timestamps non-decreasing per lane even if the wall clock
      steps. Lanes are domain-local state ([Domain.DLS]), so the hot
      path never takes a lock; the global registry of lanes is only
      touched once per domain, at first use.
    - Span ids come from one process-wide atomic counter, so on a
      single-lane (sequential) run id order is exactly begin order —
      which is what the golden-trace regression test pins. *)

type attr = Str of string | Int of int | Float of float | Bool of bool

type span = {
  id : int;
  parent : int;
  lane : int;
  name : string;
  mutable attrs : (string * attr) list;
  t_begin : float;
  mutable t_end : float;
  seq_begin : int;
  mutable seq_end : int;
}

type lane = {
  lane_id : int;
  mutable stack : span list;
  mutable recorded : span list;  (** reverse begin order *)
  mutable seq : int;  (** per-lane begin/end action counter *)
  mutable last_ts : float;  (** monotonicity clamp *)
}

let enabled_flag = Atomic.make false

let next_id = Atomic.make 0

let next_lane = Atomic.make 0

let registry_mutex = Mutex.create ()

let lanes : lane list ref = ref []

let lane_key =
  Domain.DLS.new_key (fun () ->
      let l =
        {
          lane_id = Atomic.fetch_and_add next_lane 1;
          stack = [];
          recorded = [];
          seq = 0;
          last_ts = 0.0;
        }
      in
      Mutex.protect registry_mutex (fun () -> lanes := l :: !lanes);
      l)

let epoch = Unix.gettimeofday ()

(* Microseconds since the tracer's epoch, clamped non-decreasing per
   lane so parent intervals always contain their children even if the
   wall clock steps backwards. *)
let tick lane =
  let t = (Unix.gettimeofday () -. epoch) *. 1e6 in
  let t = if t < lane.last_ts then lane.last_ts else t in
  lane.last_ts <- t;
  t

let enabled () = Atomic.get enabled_flag

let set_enabled b = Atomic.set enabled_flag b

let clear () =
  Mutex.protect registry_mutex (fun () ->
      List.iter (fun l -> l.recorded <- []) !lanes)

let with_span ?(attrs = []) name f =
  if not (Atomic.get enabled_flag) then f ()
  else begin
    let lane = Domain.DLS.get lane_key in
    let parent = match lane.stack with [] -> -1 | s :: _ -> s.id in
    let seq = lane.seq in
    lane.seq <- seq + 1;
    let ts = tick lane in
    let sp =
      {
        id = Atomic.fetch_and_add next_id 1;
        parent;
        lane = lane.lane_id;
        name;
        attrs;
        t_begin = ts;
        t_end = ts;
        seq_begin = seq;
        seq_end = seq;
      }
    in
    lane.stack <- sp :: lane.stack;
    lane.recorded <- sp :: lane.recorded;
    Fun.protect
      ~finally:(fun () ->
        (match lane.stack with s :: rest when s == sp -> lane.stack <- rest | _ -> ());
        let seq = lane.seq in
        lane.seq <- seq + 1;
        sp.seq_end <- seq;
        sp.t_end <- tick lane)
      f
  end

let add_attrs attrs =
  if Atomic.get enabled_flag then begin
    let lane = Domain.DLS.get lane_key in
    match lane.stack with
    | [] -> ()
    | sp :: _ -> sp.attrs <- sp.attrs @ attrs
  end

let events () =
  let all =
    Mutex.protect registry_mutex (fun () ->
        List.concat_map (fun l -> l.recorded) !lanes)
  in
  List.sort (fun a b -> compare a.id b.id) all

let span_count () =
  Mutex.protect registry_mutex (fun () ->
      List.fold_left (fun acc l -> acc + List.length l.recorded) 0 !lanes)

let with_tracing f =
  clear ();
  set_enabled true;
  let finally () = set_enabled false in
  let v = Fun.protect ~finally f in
  let evs = events () in
  clear ();
  (v, evs)
