(** Exporters for recorded traces and metric snapshots.

    {!chrome_json} emits the Chrome [trace_event] format (a JSON object
    with a ["traceEvents"] array of B/E duration events), which loads
    directly into Perfetto ({:https://ui.perfetto.dev}) or Chrome's
    [about:tracing]. {!summary_json} / {!summary_sexp} emit a flat
    machine-readable digest of a metrics snapshot.

    The module also carries a small self-contained JSON reader used to
    validate exported traces — CI fails the build if the exporter ever
    emits a file {!validate_chrome} rejects. *)

val chrome_json : ?pid:int -> Trace.span list -> string
(** Render spans as Chrome trace_event JSON. Every span becomes a
    ["B"]/["E"] pair on its lane's [tid], replayed in the exact order
    the lane recorded them, with the span's attributes in the begin
    event's [args]. *)

val metrics_json : Metrics.snapshot -> string
(** One JSON object: [{"counters": {...}, "gauges": {...},
    "histograms": {...}}]. *)

val summary_json : span_count:int -> Metrics.snapshot -> string
(** [{"spans": n, "metrics": <metrics_json>}]. *)

val summary_sexp : span_count:int -> Metrics.snapshot -> string
(** The same digest as an s-expression. *)

(** Parsed JSON, for validation and tests. *)
type json =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of json list
  | Obj of (string * json) list

val parse_json : string -> (json, string) result
(** Strict recursive-descent parse of one JSON document. *)

val validate_chrome : string -> (unit, string) result
(** Check that a string is well-formed Chrome trace JSON: parses, has a
    ["traceEvents"] array, every event has a valid phase, numeric [ts]
    and non-negative integer [pid]/[tid], and per-[tid] the ["B"] and
    ["E"] events balance like a bracket language (matching names). *)
