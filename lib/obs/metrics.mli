(** The simulator's metrics registry: named counters, gauges and
    histograms that every layer reports into.

    Counters and histograms are *domain-sharded*: each domain writes a
    private shard through domain-local state, so {!Gpu.Pool} workers
    never contend on the hot path, and {!snapshot} merges the shards —
    the same integer-sum discipline as [Gpu.Counters.merge], so a
    parallel run's snapshot equals the sequential run's (the property
    test in test/test_obs.ml pins this). Gauges are last-write-wins
    under a lock (they are set rarely, from control paths).

    Handles are interned by name: [counter "x"] from two modules
    returns the same metric. Metric names the simulator emits are
    catalogued in docs/OBSERVABILITY.md. *)

type counter

type gauge

type histogram

val counter : string -> counter
(** Intern (create or look up) the counter named [s]. *)

val add : counter -> int -> unit

val incr : counter -> unit

val gauge : string -> gauge

val set_gauge : gauge -> float -> unit

val histogram : string -> histogram

val observe : histogram -> float -> unit
(** Record one observation. Bucketing is by the bit-width of the
    integer part ([bucket k] holds values with integer part in
    [2^(k-1), 2^k)), so bucket counts merge deterministically. *)

(** A merged histogram: total count and sum, observed min/max, and the
    power-of-two bucket counts. [vmin]/[vmax] are meaningless when
    [count = 0]. *)
type hist = {
  count : int;
  sum : float;
  vmin : float;
  vmax : float;
  buckets : int array;
}

(** A point-in-time merge of every registered metric, each section
    sorted by name. Gauges that were never set are omitted. *)
type snapshot = {
  counters : (string * int) list;
  gauges : (string * float) list;
  histograms : (string * hist) list;
}

val snapshot : unit -> snapshot
(** Merge all domain shards. Quiesce worker domains first; snapshotting
    while other domains write reads torn partial sums. *)

val reset : unit -> unit
(** Zero every shard of every metric and unset all gauges (the metrics
    stay registered). *)

val get_counter : snapshot -> string -> int
(** Value of a counter in a snapshot; 0 when absent. *)

val snapshot_equal : snapshot -> snapshot -> bool

val pp_snapshot : Format.formatter -> snapshot -> unit
