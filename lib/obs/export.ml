(** Exporters (see the interface).

    The Chrome emitter replays each lane's begin/end actions by their
    recorded per-lane sequence numbers rather than sorting by
    timestamp: timestamps can tie at microsecond resolution, and the
    trace_event format requires B/E events of one [tid] to nest exactly
    — the sequence numbers carry the true nesting by construction. *)

(* ------------------------------------------------------------------ *)
(* JSON writing                                                        *)
(* ------------------------------------------------------------------ *)

let escape_json buf s =
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s

let add_str buf s =
  Buffer.add_char buf '"';
  escape_json buf s;
  Buffer.add_char buf '"'

(* JSON has no infinities or NaN; clamp the rare gauge that holds one. *)
let add_float buf v =
  if Float.is_nan v then Buffer.add_string buf "0"
  else if v = infinity then Buffer.add_string buf "1e308"
  else if v = neg_infinity then Buffer.add_string buf "-1e308"
  else Buffer.add_string buf (Printf.sprintf "%.17g" v)

let add_attr buf (v : Trace.attr) =
  match v with
  | Trace.Str s -> add_str buf s
  | Trace.Int i -> Buffer.add_string buf (string_of_int i)
  | Trace.Float f -> add_float buf f
  | Trace.Bool b -> Buffer.add_string buf (string_of_bool b)

(* ------------------------------------------------------------------ *)
(* Chrome trace_event                                                  *)
(* ------------------------------------------------------------------ *)

type action = { a_lane : int; a_seq : int; a_ts : float; a_begin : bool; a_span : Trace.span }

let chrome_json ?(pid = 1) (spans : Trace.span list) =
  let actions =
    List.concat_map
      (fun (s : Trace.span) ->
        [
          { a_lane = s.Trace.lane; a_seq = s.Trace.seq_begin; a_ts = s.Trace.t_begin;
            a_begin = true; a_span = s };
          { a_lane = s.Trace.lane; a_seq = s.Trace.seq_end; a_ts = s.Trace.t_end;
            a_begin = false; a_span = s };
        ])
      spans
    |> List.sort (fun a b ->
           match compare a.a_lane b.a_lane with 0 -> compare a.a_seq b.a_seq | c -> c)
  in
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "{\"traceEvents\": [\n";
  List.iteri
    (fun i a ->
      if i > 0 then Buffer.add_string buf ",\n";
      let s = a.a_span in
      Buffer.add_string buf "  {\"name\": ";
      add_str buf s.Trace.name;
      Buffer.add_string buf
        (Printf.sprintf ", \"ph\": \"%s\", \"ts\": %.3f, \"pid\": %d, \"tid\": %d"
           (if a.a_begin then "B" else "E")
           a.a_ts pid a.a_lane);
      if a.a_begin && s.Trace.attrs <> [] then begin
        Buffer.add_string buf ", \"args\": {";
        List.iteri
          (fun j (k, v) ->
            if j > 0 then Buffer.add_string buf ", ";
            add_str buf k;
            Buffer.add_string buf ": ";
            add_attr buf v)
          s.Trace.attrs;
        Buffer.add_char buf '}'
      end;
      Buffer.add_char buf '}')
    actions;
  Buffer.add_string buf "\n]}\n";
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Metrics digests                                                     *)
(* ------------------------------------------------------------------ *)

let metrics_json_buf buf (snap : Metrics.snapshot) =
  Buffer.add_string buf "{\"counters\": {";
  List.iteri
    (fun i (n, v) ->
      if i > 0 then Buffer.add_string buf ", ";
      add_str buf n;
      Buffer.add_string buf (Printf.sprintf ": %d" v))
    snap.Metrics.counters;
  Buffer.add_string buf "}, \"gauges\": {";
  List.iteri
    (fun i (n, v) ->
      if i > 0 then Buffer.add_string buf ", ";
      add_str buf n;
      Buffer.add_string buf ": ";
      add_float buf v)
    snap.Metrics.gauges;
  Buffer.add_string buf "}, \"histograms\": {";
  List.iteri
    (fun i (n, (h : Metrics.hist)) ->
      if i > 0 then Buffer.add_string buf ", ";
      add_str buf n;
      Buffer.add_string buf (Printf.sprintf ": {\"count\": %d, \"sum\": " h.Metrics.count);
      add_float buf h.Metrics.sum;
      if h.Metrics.count > 0 then begin
        Buffer.add_string buf ", \"min\": ";
        add_float buf h.Metrics.vmin;
        Buffer.add_string buf ", \"max\": ";
        add_float buf h.Metrics.vmax
      end;
      (* only the occupied tail of the bucket array *)
      let last = ref (-1) in
      Array.iteri (fun i b -> if b > 0 then last := i) h.Metrics.buckets;
      Buffer.add_string buf ", \"buckets\": [";
      for i = 0 to !last do
        if i > 0 then Buffer.add_string buf ", ";
        Buffer.add_string buf (string_of_int h.Metrics.buckets.(i))
      done;
      Buffer.add_string buf "]}")
    snap.Metrics.histograms;
  Buffer.add_string buf "}}"

let metrics_json snap =
  let buf = Buffer.create 1024 in
  metrics_json_buf buf snap;
  Buffer.contents buf

let summary_json ~span_count snap =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf (Printf.sprintf "{\"spans\": %d, \"metrics\": " span_count);
  metrics_json_buf buf snap;
  Buffer.add_string buf "}\n";
  Buffer.contents buf

let summary_sexp ~span_count (snap : Metrics.snapshot) =
  let buf = Buffer.create 1024 in
  let escape s =
    if String.exists (fun c -> c = ' ' || c = '(' || c = ')' || c = '"') s then
      "\"" ^ String.concat "\\\"" (String.split_on_char '"' s) ^ "\""
    else s
  in
  Buffer.add_string buf (Printf.sprintf "((spans %d)\n (counters" span_count);
  List.iter
    (fun (n, v) -> Buffer.add_string buf (Printf.sprintf " (%s %d)" (escape n) v))
    snap.Metrics.counters;
  Buffer.add_string buf ")\n (gauges";
  List.iter
    (fun (n, v) -> Buffer.add_string buf (Printf.sprintf " (%s %.17g)" (escape n) v))
    snap.Metrics.gauges;
  Buffer.add_string buf ")\n (histograms";
  List.iter
    (fun (n, (h : Metrics.hist)) ->
      Buffer.add_string buf
        (Printf.sprintf " (%s (count %d) (sum %.17g))" (escape n) h.Metrics.count
           h.Metrics.sum))
    snap.Metrics.histograms;
  Buffer.add_string buf "))\n";
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* JSON reading (for validation and tests)                             *)
(* ------------------------------------------------------------------ *)

type json =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of json list
  | Obj of (string * json) list

exception Parse_error of string

let parse_json s =
  let n = String.length s in
  let pos = ref 0 in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = Stdlib.incr pos in
  let fail msg = raise (Parse_error (Printf.sprintf "%s at offset %d" msg !pos)) in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
        advance ();
        skip_ws ()
    | _ -> ()
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | _ -> fail (Printf.sprintf "expected '%c'" c)
  in
  let literal lit v =
    let l = String.length lit in
    if !pos + l <= n && String.sub s !pos l = lit then begin
      pos := !pos + l;
      v
    end
    else fail ("expected " ^ lit)
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      match peek () with
      | None -> fail "unterminated string"
      | Some '"' -> advance ()
      | Some '\\' -> (
          advance ();
          match peek () with
          | Some 'n' -> advance (); Buffer.add_char buf '\n'; go ()
          | Some 't' -> advance (); Buffer.add_char buf '\t'; go ()
          | Some 'r' -> advance (); Buffer.add_char buf '\r'; go ()
          | Some 'b' -> advance (); Buffer.add_char buf '\b'; go ()
          | Some 'f' -> advance (); Buffer.add_char buf '\012'; go ()
          | Some '/' -> advance (); Buffer.add_char buf '/'; go ()
          | Some '"' -> advance (); Buffer.add_char buf '"'; go ()
          | Some '\\' -> advance (); Buffer.add_char buf '\\'; go ()
          | Some 'u' ->
              advance ();
              if !pos + 4 > n then fail "truncated \\u escape";
              let hex = String.sub s !pos 4 in
              (match int_of_string_opt ("0x" ^ hex) with
              | None -> fail "invalid \\u escape"
              | Some code ->
                  pos := !pos + 4;
                  (* keep it simple: escapes the exporter emits are ASCII *)
                  if code < 0x80 then Buffer.add_char buf (Char.chr code)
                  else Buffer.add_string buf (Printf.sprintf "\\u%04x" code));
              go ()
          | _ -> fail "invalid escape")
      | Some c ->
          advance ();
          Buffer.add_char buf c;
          go ()
    in
    go ();
    Buffer.contents buf
  in
  let parse_number () =
    let start = !pos in
    let is_num_char c =
      (c >= '0' && c <= '9')
      || c = '-' || c = '+' || c = '.' || c = 'e' || c = 'E'
    in
    while (match peek () with Some c when is_num_char c -> true | _ -> false) do
      advance ()
    done;
    match float_of_string_opt (String.sub s start (!pos - start)) with
    | Some f -> f
    | None -> fail "invalid number"
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then begin
          advance ();
          Obj []
        end
        else begin
          let rec members acc =
            skip_ws ();
            let k = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                members ((k, v) :: acc)
            | Some '}' ->
                advance ();
                List.rev ((k, v) :: acc)
            | _ -> fail "expected ',' or '}'"
          in
          Obj (members [])
        end
    | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then begin
          advance ();
          Arr []
        end
        else begin
          let rec elements acc =
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                elements (v :: acc)
            | Some ']' ->
                advance ();
                List.rev (v :: acc)
            | _ -> fail "expected ',' or ']'"
          in
          Arr (elements [])
        end
    | Some '"' -> Str (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some _ -> Num (parse_number ())
  in
  match
    let v = parse_value () in
    skip_ws ();
    if !pos <> n then fail "trailing garbage";
    v
  with
  | v -> Ok v
  | exception Parse_error msg -> Error msg

(* ------------------------------------------------------------------ *)
(* Chrome trace validation                                             *)
(* ------------------------------------------------------------------ *)

let validate_chrome text =
  let ( let* ) = Result.bind in
  let* doc = parse_json text in
  let* events =
    match doc with
    | Obj fields -> (
        match List.assoc_opt "traceEvents" fields with
        | Some (Arr evs) -> Ok evs
        | Some _ -> Error "traceEvents is not an array"
        | None -> Error "missing traceEvents")
    | _ -> Error "top level is not an object"
  in
  let field ev name =
    match ev with Obj fields -> List.assoc_opt name fields | _ -> None
  in
  let nonneg_int = function
    | Some (Num f) when Float.is_integer f && f >= 0.0 -> true
    | _ -> false
  in
  (* per-tid stacks of open B names *)
  let stacks : (int, string list) Hashtbl.t = Hashtbl.create 8 in
  let rec go i = function
    | [] ->
        let unclosed =
          Hashtbl.fold (fun _ stack acc -> acc + List.length stack) stacks 0
        in
        if unclosed = 0 then Ok ()
        else Error (Printf.sprintf "%d unmatched B events" unclosed)
    | ev :: rest ->
        let err msg = Error (Printf.sprintf "event %d: %s" i msg) in
        if (match ev with Obj _ -> false | _ -> true) then err "not an object"
        else if not (nonneg_int (field ev "pid")) then err "bad pid"
        else if not (nonneg_int (field ev "tid")) then err "bad tid"
        else if (match field ev "ts" with Some (Num _) -> false | _ -> true) then
          err "bad ts"
        else begin
          let tid =
            match field ev "tid" with Some (Num f) -> int_of_float f | _ -> 0
          in
          let name =
            match field ev "name" with Some (Str s) -> Some s | _ -> None
          in
          match field ev "ph" with
          | Some (Str "B") -> (
              match name with
              | None -> err "B event without a name"
              | Some nm ->
                  let stack =
                    Option.value ~default:[] (Hashtbl.find_opt stacks tid)
                  in
                  Hashtbl.replace stacks tid (nm :: stack);
                  go (i + 1) rest)
          | Some (Str "E") -> (
              match Option.value ~default:[] (Hashtbl.find_opt stacks tid) with
              | [] -> err "E event without a matching B"
              | top :: stack ->
                  if name <> None && name <> Some top then
                    err
                      (Printf.sprintf "E name %S does not match open B %S"
                         (Option.get name) top)
                  else begin
                    Hashtbl.replace stacks tid stack;
                    go (i + 1) rest
                  end)
          | Some (Str ("X" | "I" | "M" | "C")) -> go (i + 1) rest
          | Some (Str ph) -> err (Printf.sprintf "unknown phase %S" ph)
          | _ -> err "missing phase"
        end
  in
  go 0 events
