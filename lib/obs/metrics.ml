(** Metrics registry (see the interface for the model).

    Counters and histograms keep one shard per domain, reached through
    [Domain.DLS]: the write path is a domain-local lookup plus a plain
    mutation, no locks. A shard registers itself into its metric's
    shard list once, on the domain's first write, under the metric's
    mutex. [snapshot] folds the shards; integer sums commute, so the
    merged totals are independent of how work was split across domains
    — the same algebra [Gpu.Counters.merge] relies on. *)

let n_buckets = 64

(* ------------------------------------------------------------------ *)
(* Counters                                                            *)
(* ------------------------------------------------------------------ *)

type counter = {
  c_name : string;
  c_mutex : Mutex.t;
  c_shards : int ref list ref;
  c_key : int ref Domain.DLS.key;
}

let make_counter name =
  let shards = ref [] in
  let mutex = Mutex.create () in
  let key =
    Domain.DLS.new_key (fun () ->
        let r = ref 0 in
        Mutex.protect mutex (fun () -> shards := r :: !shards);
        r)
  in
  { c_name = name; c_mutex = mutex; c_shards = shards; c_key = key }

let add c n =
  let r = Domain.DLS.get c.c_key in
  r := !r + n

let incr c = add c 1

(* ------------------------------------------------------------------ *)
(* Gauges                                                              *)
(* ------------------------------------------------------------------ *)

type gauge = {
  g_name : string;
  g_mutex : Mutex.t;
  mutable g_value : float option;
}

let set_gauge g v = Mutex.protect g.g_mutex (fun () -> g.g_value <- Some v)

(* ------------------------------------------------------------------ *)
(* Histograms                                                          *)
(* ------------------------------------------------------------------ *)

type hshard = {
  mutable s_count : int;
  mutable s_sum : float;
  mutable s_min : float;
  mutable s_max : float;
  s_buckets : int array;
}

type histogram = {
  h_name : string;
  h_mutex : Mutex.t;
  h_shards : hshard list ref;
  h_key : hshard Domain.DLS.key;
}

let make_histogram name =
  let shards = ref [] in
  let mutex = Mutex.create () in
  let key =
    Domain.DLS.new_key (fun () ->
        let s =
          {
            s_count = 0;
            s_sum = 0.0;
            s_min = infinity;
            s_max = neg_infinity;
            s_buckets = Array.make n_buckets 0;
          }
        in
        Mutex.protect mutex (fun () -> shards := s :: !shards);
        s)
  in
  { h_name = name; h_mutex = mutex; h_shards = shards; h_key = key }

(* Bucket by the bit-width of the non-negative integer part: pure
   integer math, so bucket counts are exact and merge-order free. *)
let bucket_of v =
  if Float.is_nan v || v <= 0.0 then 0
  else begin
    let n = int_of_float v in
    let rec bits n acc = if n = 0 then acc else bits (n lsr 1) (acc + 1) in
    min (n_buckets - 1) (bits n 0)
  end

let observe h v =
  let s = Domain.DLS.get h.h_key in
  s.s_count <- s.s_count + 1;
  s.s_sum <- s.s_sum +. v;
  if v < s.s_min then s.s_min <- v;
  if v > s.s_max then s.s_max <- v;
  let b = bucket_of v in
  s.s_buckets.(b) <- s.s_buckets.(b) + 1

(* ------------------------------------------------------------------ *)
(* Registry                                                            *)
(* ------------------------------------------------------------------ *)

let registry_mutex = Mutex.create ()

let counters_tbl : (string, counter) Hashtbl.t = Hashtbl.create 32

let gauges_tbl : (string, gauge) Hashtbl.t = Hashtbl.create 16

let histograms_tbl : (string, histogram) Hashtbl.t = Hashtbl.create 16

let intern tbl name make =
  Mutex.protect registry_mutex (fun () ->
      match Hashtbl.find_opt tbl name with
      | Some m -> m
      | None ->
          let m = make name in
          Hashtbl.add tbl name m;
          m)

let counter name = intern counters_tbl name make_counter

let gauge name =
  intern gauges_tbl name (fun g_name ->
      { g_name; g_mutex = Mutex.create (); g_value = None })

let histogram name = intern histograms_tbl name make_histogram

(* ------------------------------------------------------------------ *)
(* Snapshot and reset                                                  *)
(* ------------------------------------------------------------------ *)

type hist = {
  count : int;
  sum : float;
  vmin : float;
  vmax : float;
  buckets : int array;
}

type snapshot = {
  counters : (string * int) list;
  gauges : (string * float) list;
  histograms : (string * hist) list;
}

let sorted_values tbl =
  Hashtbl.fold (fun _ v acc -> v :: acc) tbl []

let by_name name_of l = List.sort (fun a b -> compare (name_of a) (name_of b)) l

let snapshot () =
  Mutex.protect registry_mutex (fun () ->
      let counters =
        sorted_values counters_tbl
        |> by_name (fun c -> c.c_name)
        |> List.map (fun c ->
               let total =
                 Mutex.protect c.c_mutex (fun () ->
                     List.fold_left (fun acc r -> acc + !r) 0 !(c.c_shards))
               in
               (c.c_name, total))
      in
      let gauges =
        sorted_values gauges_tbl
        |> by_name (fun g -> g.g_name)
        |> List.filter_map (fun g ->
               Mutex.protect g.g_mutex (fun () ->
                   Option.map (fun v -> (g.g_name, v)) g.g_value))
      in
      let histograms =
        sorted_values histograms_tbl
        |> by_name (fun h -> h.h_name)
        |> List.map (fun h ->
               let merged =
                 Mutex.protect h.h_mutex (fun () ->
                     List.fold_left
                       (fun acc s ->
                         {
                           count = acc.count + s.s_count;
                           sum = acc.sum +. s.s_sum;
                           vmin = Float.min acc.vmin s.s_min;
                           vmax = Float.max acc.vmax s.s_max;
                           buckets =
                             Array.mapi
                               (fun i b -> b + s.s_buckets.(i))
                               acc.buckets;
                         })
                       {
                         count = 0;
                         sum = 0.0;
                         vmin = infinity;
                         vmax = neg_infinity;
                         buckets = Array.make n_buckets 0;
                       }
                       !(h.h_shards))
               in
               (h.h_name, merged))
      in
      { counters; gauges; histograms })

let reset () =
  Mutex.protect registry_mutex (fun () ->
      Hashtbl.iter
        (fun _ c ->
          Mutex.protect c.c_mutex (fun () ->
              List.iter (fun r -> r := 0) !(c.c_shards)))
        counters_tbl;
      Hashtbl.iter
        (fun _ g -> Mutex.protect g.g_mutex (fun () -> g.g_value <- None))
        gauges_tbl;
      Hashtbl.iter
        (fun _ h ->
          Mutex.protect h.h_mutex (fun () ->
              List.iter
                (fun s ->
                  s.s_count <- 0;
                  s.s_sum <- 0.0;
                  s.s_min <- infinity;
                  s.s_max <- neg_infinity;
                  Array.fill s.s_buckets 0 n_buckets 0)
                !(h.h_shards)))
        histograms_tbl)

let get_counter snap name =
  match List.assoc_opt name snap.counters with Some v -> v | None -> 0

let hist_equal a b =
  a.count = b.count
  && a.sum = b.sum
  && (a.count = 0 || (a.vmin = b.vmin && a.vmax = b.vmax))
  && a.buckets = b.buckets

let snapshot_equal a b =
  a.counters = b.counters
  && a.gauges = b.gauges
  && List.length a.histograms = List.length b.histograms
  && List.for_all2
       (fun (n1, h1) (n2, h2) -> n1 = n2 && hist_equal h1 h2)
       a.histograms b.histograms

let pp_snapshot ppf s =
  Fmt.pf ppf "@[<v>";
  List.iter (fun (n, v) -> Fmt.pf ppf "counter %-28s %d@," n v) s.counters;
  List.iter (fun (n, v) -> Fmt.pf ppf "gauge   %-28s %g@," n v) s.gauges;
  List.iter
    (fun (n, h) ->
      if h.count = 0 then Fmt.pf ppf "hist    %-28s (empty)@," n
      else
        Fmt.pf ppf "hist    %-28s n=%d sum=%g min=%g max=%g@," n h.count h.sum
          h.vmin h.vmax)
    s.histograms;
  Fmt.pf ppf "@]"
