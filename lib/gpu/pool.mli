(** A fixed pool of worker domains for block-parallel kernel execution.

    Thread blocks of one simulated kernel launch are independent, so
    {!Machine.launch} can fan them out across OCaml 5 domains. The pool
    is created once and reused across kernel calls; the index range of
    each [run] is split into contiguous chunks, chunk [k] running
    entirely on lane [k] (no work stealing), so every lane executes a
    fixed, run-independent subset of the work. Lane 0 is the calling
    domain itself: a pool of size [d] spawns [d - 1] domains. *)

type t

val create : ?domains:int -> unit -> t
(** [create ~domains ()] spawns a pool of [max 1 domains] lanes
    (default 1, which spawns nothing and runs everything inline). *)

val size : t -> int
(** Parallel lanes, including the calling domain. *)

val run : t -> n:int -> (lane:int -> int -> unit) -> unit
(** [run pool ~n f] calls [f ~lane i] for every [i] in [0, n), the
    range statically partitioned into at most [size pool] contiguous
    chunks; indices within a chunk run in increasing order on one lane.
    Blocks until all chunks finish. If chunks raise, the exception of
    the lowest-numbered lane is re-raised after all lanes drain.
    @raise Invalid_argument on a pool that was shut down. *)

val shutdown : t -> unit
(** Join the worker domains. The pool must not be used afterwards. *)

val with_pool : ?domains:int -> (t option -> 'a) -> 'a
(** [with_pool ~domains f] runs [f (Some pool)] with a freshly created
    pool and shuts it down afterwards — or [f None] when [domains <= 1],
    selecting the zero-overhead sequential path. *)
