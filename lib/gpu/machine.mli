(** The simulated GPU machine.

    Executors run "kernels" block by block on the host while every
    global-memory, shared-memory and arithmetic operation is routed
    through this module and counted. Thread blocks of one launch are
    independent by CUDA semantics, so serial execution preserves the
    result exactly. Resource checks (block size, shared-memory
    capacity) are enforced as a real launch would. *)

type t = {
  device : Device.t;
  counters : Counters.t;
  prec : Stencil.Grid.precision;
}

val create : ?prec:Stencil.Grid.precision -> Device.t -> t

val word_bytes : t -> int

val gm_read : t -> Stencil.Grid.t -> int array -> float
(** Counted global read. *)

val gm_write : t -> Stencil.Grid.t -> int array -> float -> unit

val gm_read_lin : t -> Stencil.Grid.t -> int -> float

val gm_write_lin : t -> Stencil.Grid.t -> int -> float -> unit

exception Launch_failure of string

type block_ctx = {
  machine : t;
  block_id : int;
  n_thr : int;
  mutable smem_bytes : int;  (** shared memory allocated by this block *)
}

(** Per-block shared-memory buffers with counted accesses;
    out-of-bounds indexing raises. *)
module Shared : sig
  type buf

  val alloc : block_ctx -> int -> buf
  (** Allocate [n] words.
      @raise Launch_failure when the block exceeds the SM's capacity. *)

  val size : buf -> int

  val read : buf -> int -> float

  val write : buf -> int -> float -> unit
  (** Stores with the machine's precision rounding. *)

  val read_as_register : buf -> int -> float
  (** Uncounted read, for values the paper models as register accesses
      (cells owned by the requesting thread, §4.1). *)
end

val barrier : block_ctx -> unit

val record_update : block_ctx -> Stencil.Sexpr.ops -> unit
(** Count the arithmetic of one cell update. *)

val launch :
  ?pool:Pool.t -> t -> n_blocks:int -> n_thr:int -> (block_ctx -> unit) -> unit
(** Run a kernel of [n_blocks] thread blocks; [f] simulates one block
    and must route every counted access through its [ctx.machine].
    With a [pool] of more than one lane, blocks are partitioned into
    contiguous chunks across domains, each lane counting into a private
    shard machine; the shards are merged into the launch machine's
    counters afterwards. Results and merged counters are bit-identical
    to the sequential path (blocks are independent and integer counter
    sums commute).
    @raise Launch_failure on invalid launch geometry. *)
