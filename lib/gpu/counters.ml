(** Memory-traffic and operation counters for the simulated GPU.

    Executors increment these through the {!Machine} API; validation
    tests assert the totals against the §5 analytic formulas, and the
    "measurement" layer converts them to time through the roofline. *)

type t = {
  mutable gm_reads : int;  (** global memory words read *)
  mutable gm_writes : int;  (** global memory words written *)
  mutable sm_reads : int;  (** shared memory words read *)
  mutable sm_writes : int;  (** shared memory words written *)
  mutable fma : int;
  mutable mul : int;
  mutable add : int;
  mutable other : int;  (** special-function ops: sqrt, rsqrt, true div *)
  mutable kernel_launches : int;
  mutable barriers : int;
  mutable cells_updated : int;  (** valid stores of final time-steps *)
}

let create () =
  {
    gm_reads = 0;
    gm_writes = 0;
    sm_reads = 0;
    sm_writes = 0;
    fma = 0;
    mul = 0;
    add = 0;
    other = 0;
    kernel_launches = 0;
    barriers = 0;
    cells_updated = 0;
  }

let reset c =
  c.gm_reads <- 0;
  c.gm_writes <- 0;
  c.sm_reads <- 0;
  c.sm_writes <- 0;
  c.fma <- 0;
  c.mul <- 0;
  c.add <- 0;
  c.other <- 0;
  c.kernel_launches <- 0;
  c.barriers <- 0;
  c.cells_updated <- 0

let copy c =
  {
    gm_reads = c.gm_reads;
    gm_writes = c.gm_writes;
    sm_reads = c.sm_reads;
    sm_writes = c.sm_writes;
    fma = c.fma;
    mul = c.mul;
    add = c.add;
    other = c.other;
    kernel_launches = c.kernel_launches;
    barriers = c.barriers;
    cells_updated = c.cells_updated;
  }

(** Accumulate [src] into [into], field by field. Counters are plain
    integer sums, so accumulation commutes and associates exactly —
    per-domain shards merged in any order equal the sequential totals. *)
let add_into src ~into =
  into.gm_reads <- into.gm_reads + src.gm_reads;
  into.gm_writes <- into.gm_writes + src.gm_writes;
  into.sm_reads <- into.sm_reads + src.sm_reads;
  into.sm_writes <- into.sm_writes + src.sm_writes;
  into.fma <- into.fma + src.fma;
  into.mul <- into.mul + src.mul;
  into.add <- into.add + src.add;
  into.other <- into.other + src.other;
  into.kernel_launches <- into.kernel_launches + src.kernel_launches;
  into.barriers <- into.barriers + src.barriers;
  into.cells_updated <- into.cells_updated + src.cells_updated

(** Fresh counter holding the field-wise sum. [merge [] = create ()]. *)
let merge cs =
  let acc = create () in
  List.iter (fun c -> add_into c ~into:acc) cs;
  acc

let equal a b =
  a.gm_reads = b.gm_reads
  && a.gm_writes = b.gm_writes
  && a.sm_reads = b.sm_reads
  && a.sm_writes = b.sm_writes
  && a.fma = b.fma
  && a.mul = b.mul
  && a.add = b.add
  && a.other = b.other
  && a.kernel_launches = b.kernel_launches
  && a.barriers = b.barriers
  && a.cells_updated = b.cells_updated

(** Record the operation mix of one cell update. *)
let add_ops c (ops : Stencil.Sexpr.ops) =
  c.fma <- c.fma + ops.Stencil.Sexpr.fma;
  c.mul <- c.mul + ops.Stencil.Sexpr.mul;
  c.add <- c.add + ops.Stencil.Sexpr.add;
  c.other <- c.other + ops.Stencil.Sexpr.other

(* Bulk accumulators: the compiled-plan executors know per-plane traffic
   analytically (per-thread counts are block-level constants), so they
   add a whole plane's worth in one mutation instead of one per cell.
   The totals are the same integer sums, so bulk and per-cell paths
   agree field for field. *)

let add_gm_reads c n = c.gm_reads <- c.gm_reads + n

let add_gm_writes c n = c.gm_writes <- c.gm_writes + n

let add_sm_reads c n = c.sm_reads <- c.sm_reads + n

let add_sm_writes c n = c.sm_writes <- c.sm_writes + n

let add_barriers c n = c.barriers <- c.barriers + n

let add_cells_updated c n = c.cells_updated <- c.cells_updated + n

(** [add_ops_n c ops n] records the mix of [n] identical cell updates. *)
let add_ops_n c (ops : Stencil.Sexpr.ops) n =
  c.fma <- c.fma + (ops.Stencil.Sexpr.fma * n);
  c.mul <- c.mul + (ops.Stencil.Sexpr.mul * n);
  c.add <- c.add + (ops.Stencil.Sexpr.add * n);
  c.other <- c.other + (ops.Stencil.Sexpr.other * n)

let gm_words c = c.gm_reads + c.gm_writes

let sm_words c = c.sm_reads + c.sm_writes

(** Weighted FLOPs with FMA = 2, matching [total_comp] of §5. *)
let weighted_flops c = (2 * c.fma) + c.mul + c.add + c.other

let total_ops c = c.fma + c.mul + c.add + c.other

let alu_efficiency c =
  if total_ops c = 0 then 1.0
  else float (weighted_flops c) /. float (2 * total_ops c)

let pp ppf c =
  Fmt.pf ppf
    "gm r/w %d/%d, sm r/w %d/%d, ops fma=%d mul=%d add=%d other=%d, launches %d, \
     cells %d"
    c.gm_reads c.gm_writes c.sm_reads c.sm_writes c.fma c.mul c.add c.other
    c.kernel_launches c.cells_updated
