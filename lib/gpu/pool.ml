(** A fixed pool of worker domains for block-parallel kernel execution.

    Thread blocks of one simulated kernel launch are independent by CUDA
    semantics (see {!Machine}), so they can be fanned out across OCaml 5
    domains. The pool is created once and reused across kernel calls —
    domain spawning is far too expensive to pay per launch.

    Scheduling is deliberately the dumbest thing that is deterministic:
    the index range [0, n) is split into at most [size] contiguous
    chunks, chunk [k] runs entirely on lane [k], and there is no work
    stealing. Every lane therefore executes a fixed, run-independent
    subset of the blocks, which is what makes the per-lane counter
    shards of {!Machine.launch} merge to exactly the sequential totals.
    Lane 0 is the calling domain itself, so a pool of size [d] spawns
    only [d - 1] domains and the caller is never idle. *)

type t = {
  size : int;  (** parallel lanes, including the calling domain *)
  mutex : Mutex.t;
  work : Condition.t;  (** signals workers that a slot was filled *)
  finished : Condition.t;  (** signals the caller that work drained *)
  slots : (unit -> unit) option array;  (** one pending closure per worker *)
  mutable pending : int;
  mutable closed : bool;
  mutable workers : unit Domain.t list;
}

let size t = t.size

(* Worker [i] sleeps until its slot is filled, runs the closure (which
   traps its own exceptions), clears the slot and goes back to sleep.
   Shutdown is a closed flag with an empty slot. *)
let rec worker_loop pool i =
  Mutex.lock pool.mutex;
  while (not pool.closed) && pool.slots.(i) = None do
    Condition.wait pool.work pool.mutex
  done;
  match pool.slots.(i) with
  | None ->
      (* closed and nothing to run *)
      Mutex.unlock pool.mutex
  | Some job ->
      Mutex.unlock pool.mutex;
      job ();
      Mutex.lock pool.mutex;
      pool.slots.(i) <- None;
      pool.pending <- pool.pending - 1;
      if pool.pending = 0 then Condition.broadcast pool.finished;
      Mutex.unlock pool.mutex;
      worker_loop pool i

let create ?(domains = 1) () =
  let size = max 1 domains in
  let pool =
    {
      size;
      mutex = Mutex.create ();
      work = Condition.create ();
      finished = Condition.create ();
      slots = Array.make (max 0 (size - 1)) None;
      pending = 0;
      closed = false;
      workers = [];
    }
  in
  pool.workers <-
    List.init (size - 1) (fun i -> Domain.spawn (fun () -> worker_loop pool i));
  pool

let shutdown pool =
  Mutex.lock pool.mutex;
  pool.closed <- true;
  Condition.broadcast pool.work;
  Mutex.unlock pool.mutex;
  List.iter Domain.join pool.workers;
  pool.workers <- []

let run pool ~n f =
  if n > 0 then begin
    if pool.closed then invalid_arg "Pool.run: pool was shut down";
    if pool.size = 1 || n = 1 then
      for i = 0 to n - 1 do
        f ~lane:0 i
      done
    else begin
      let lanes = min pool.size n in
      (* contiguous chunk [k*n/lanes, (k+1)*n/lanes) for lane k *)
      let failures = Array.make lanes None in
      let chunk k () =
        let lo = k * n / lanes and hi = (k + 1) * n / lanes in
        try
          Obs.Trace.with_span "lane"
            ~attrs:[ ("lane", Obs.Trace.Int k); ("lo", Obs.Trace.Int lo);
                     ("hi", Obs.Trace.Int hi) ]
            (fun () ->
              for i = lo to hi - 1 do
                f ~lane:k i
              done)
        with e -> failures.(k) <- Some e
      in
      Mutex.lock pool.mutex;
      pool.pending <- lanes - 1;
      for k = 1 to lanes - 1 do
        pool.slots.(k - 1) <- Some (chunk k)
      done;
      Condition.broadcast pool.work;
      Mutex.unlock pool.mutex;
      (* lane 0 is the caller *)
      chunk 0 ();
      Mutex.lock pool.mutex;
      while pool.pending > 0 do
        Condition.wait pool.finished pool.mutex
      done;
      Mutex.unlock pool.mutex;
      (* re-raise the failure of the lowest lane, mimicking where a
         sequential loop would have stopped first *)
      Array.iter (function Some e -> raise e | None -> ()) failures
    end
  end

let with_pool ?(domains = 1) f =
  if domains <= 1 then f None
  else begin
    let pool = create ~domains () in
    Fun.protect ~finally:(fun () -> shutdown pool) (fun () -> f (Some pool))
  end
