(** Memory-traffic and operation counters of the simulated GPU.

    Executors increment these through {!Machine}; tests assert the
    totals against the §5 closed-form formulas; the measurement layer
    converts them to time via the roofline. *)

type t = {
  mutable gm_reads : int;  (** global memory words read *)
  mutable gm_writes : int;
  mutable sm_reads : int;  (** shared memory words read *)
  mutable sm_writes : int;
  mutable fma : int;
  mutable mul : int;
  mutable add : int;
  mutable other : int;  (** special-function ops: sqrt, rsqrt, true division *)
  mutable kernel_launches : int;
  mutable barriers : int;
  mutable cells_updated : int;
}

val create : unit -> t

val reset : t -> unit

val copy : t -> t

val add_into : t -> into:t -> unit
(** [add_into src ~into] accumulates [src] into [into], field by field.
    Integer sums commute and associate exactly, so per-domain shards
    merged in any order equal the sequential totals. *)

val merge : t list -> t
(** Fresh counter holding the field-wise sum; [merge [] = create ()]
    and [merge [c]] is a copy of [c]. *)

val equal : t -> t -> bool
(** Field-for-field equality. *)

val add_ops : t -> Stencil.Sexpr.ops -> unit
(** Record the operation mix of one cell update. *)

(** Bulk accumulators for the compiled-plan executors: per-plane traffic
    is known analytically, so a whole plane is one increment instead of
    one mutation per cell. Same integer sums, same totals. *)

val add_gm_reads : t -> int -> unit

val add_gm_writes : t -> int -> unit

val add_sm_reads : t -> int -> unit

val add_sm_writes : t -> int -> unit

val add_barriers : t -> int -> unit

val add_cells_updated : t -> int -> unit

val add_ops_n : t -> Stencil.Sexpr.ops -> int -> unit
(** The mix of [n] identical cell updates in one mutation. *)

val gm_words : t -> int

val sm_words : t -> int

val weighted_flops : t -> int
(** FMA = 2, matching [total_comp] of §5. *)

val total_ops : t -> int

val alu_efficiency : t -> float

val pp : Format.formatter -> t -> unit
