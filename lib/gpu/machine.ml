(** The simulated GPU machine.

    Executors run "kernels" block by block on the host while every
    global-memory, shared-memory and arithmetic operation is routed
    through this module and counted. The simulation is deterministic:
    thread blocks of one kernel launch are independent by CUDA
    semantics, so they may run sequentially or fan out over a {!Pool}
    of domains — either way the result is bit-identical and the merged
    counters equal the sequential totals.

    Resource checks (threads per block, shared memory per block) are
    enforced at launch, mirroring what a real launch would reject. *)

type t = {
  device : Device.t;
  counters : Counters.t;
  prec : Stencil.Grid.precision;
}

let create ?(prec = Stencil.Grid.F64) device =
  { device; counters = Counters.create (); prec }

let word_bytes m = Stencil.Grid.bytes_per_word m.prec

(* ------------------------------------------------------------------ *)
(* Global memory                                                       *)
(* ------------------------------------------------------------------ *)

let gm_read m (g : Stencil.Grid.t) idx =
  m.counters.Counters.gm_reads <- m.counters.Counters.gm_reads + 1;
  Stencil.Grid.get g idx

let gm_write m (g : Stencil.Grid.t) idx v =
  m.counters.Counters.gm_writes <- m.counters.Counters.gm_writes + 1;
  Stencil.Grid.set g idx v

let gm_read_lin m (g : Stencil.Grid.t) off =
  m.counters.Counters.gm_reads <- m.counters.Counters.gm_reads + 1;
  Stencil.Grid.get_lin g off

let gm_write_lin m (g : Stencil.Grid.t) off v =
  m.counters.Counters.gm_writes <- m.counters.Counters.gm_writes + 1;
  Stencil.Grid.set_lin g off v

(* ------------------------------------------------------------------ *)
(* Kernels and thread blocks                                           *)
(* ------------------------------------------------------------------ *)

exception Launch_failure of string

(* Observability: launches are counted in the metrics registry too (the
   registry survives across machines, unlike [m.counters]), and every
   launch records its global-memory words into a histogram so traffic
   outliers are attributable per kernel. *)
let m_kernel_launches = Obs.Metrics.counter "kernel_launches"

let h_kernel_gm_words = Obs.Metrics.histogram "kernel_gm_words"

type block_ctx = {
  machine : t;
  block_id : int;
  n_thr : int;
  mutable smem_bytes : int;  (** shared memory allocated by this block *)
}

(** Shared memory buffers, allocated per block; reads/writes are counted.
    Out-of-bounds access raises — catching indexing bugs in executors is
    exactly what this substrate is for. *)
module Shared = struct
  type buf = { ctx : block_ctx; data : float array }

  let alloc ctx n =
    let bytes = n * word_bytes ctx.machine in
    let total = ctx.smem_bytes + bytes in
    if total > ctx.machine.device.Device.smem_per_sm then
      raise
        (Launch_failure
           (Fmt.str "shared memory overflow: %d bytes requested, %d available"
              total ctx.machine.device.Device.smem_per_sm));
    ctx.smem_bytes <- total;
    { ctx; data = Array.make n 0.0 }

  let size b = Array.length b.data

  let read b i =
    b.ctx.machine.counters.Counters.sm_reads <-
      b.ctx.machine.counters.Counters.sm_reads + 1;
    b.data.(i)

  let write b i v =
    b.ctx.machine.counters.Counters.sm_writes <-
      b.ctx.machine.counters.Counters.sm_writes + 1;
    b.data.(i) <- Stencil.Grid.round_to_prec b.ctx.machine.prec v

  (* Uncounted accessors for values the paper models as register reads
     (cells owned by the requesting thread, §4.1). *)
  let read_as_register b i = b.data.(i)
end

let barrier ctx =
  ctx.machine.counters.Counters.barriers <- ctx.machine.counters.Counters.barriers + 1

(** Record the arithmetic of one cell update. *)
let record_update ctx ops =
  Counters.add_ops ctx.machine.counters ops;
  ctx.machine.counters.Counters.cells_updated <-
    ctx.machine.counters.Counters.cells_updated + 1

(** Launch a kernel of [n_blocks] thread blocks of [n_thr] threads.
    [f] simulates one whole block and must route every counted access
    through its [ctx.machine] (not a captured machine) so that parallel
    launches can shard the counters.

    With a [pool] of more than one lane, blocks are partitioned into
    contiguous chunks across domains. Each lane gets a private shard
    machine (same device and precision, fresh counters), so workers
    never share mutable counter state; the shards are merged into
    [m.counters] after the launch. Because blocks of one launch are
    independent and write disjoint cells, the result grids are
    bit-identical to the sequential path and the merged counters are
    exactly the sequential totals (integer sums commute). *)
let launch ?pool m ~n_blocks ~n_thr f =
  if n_thr <= 0 || n_thr > m.device.Device.max_threads_per_block then
    raise
      (Launch_failure
         (Fmt.str "invalid thread-block size %d (max %d)" n_thr
            m.device.Device.max_threads_per_block));
  if n_blocks <= 0 then raise (Launch_failure "empty launch grid");
  m.counters.Counters.kernel_launches <- m.counters.Counters.kernel_launches + 1;
  Obs.Metrics.incr m_kernel_launches;
  match pool with
  | Some pool when Pool.size pool > 1 && n_blocks > 1 ->
      let shards =
        Array.init (Pool.size pool) (fun _ -> { m with counters = Counters.create () })
      in
      Fun.protect
        ~finally:(fun () ->
          (* merge even when a block raised, so partial traffic is kept *)
          let gm_words = ref 0 in
          Array.iter
            (fun s ->
              gm_words := !gm_words + Counters.gm_words s.counters;
              Counters.add_into s.counters ~into:m.counters)
            shards;
          Obs.Metrics.observe h_kernel_gm_words (float !gm_words))
        (fun () ->
          Pool.run pool ~n:n_blocks (fun ~lane block_id ->
              f { machine = shards.(lane); block_id; n_thr; smem_bytes = 0 }))
  | _ ->
      let gm_words0 = Counters.gm_words m.counters in
      Fun.protect
        ~finally:(fun () ->
          Obs.Metrics.observe h_kernel_gm_words
            (float (Counters.gm_words m.counters - gm_words0)))
        (fun () ->
          for block_id = 0 to n_blocks - 1 do
            let ctx = { machine = m; block_id; n_thr; smem_bytes = 0 } in
            f ctx
          done)
