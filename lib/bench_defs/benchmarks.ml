(** The benchmark suite of Table 3.

    Every benchmark carries both a directly constructed {!Stencil.Pattern}
    and the C source AN5D would receive; the C text is generated from the
    same expression tree, so parsing + detection must reproduce the
    pattern — an end-to-end test asserts they compute bit-identical
    results and agree on the Table 3 FLOP/cell counts.

    Input sizes follow §6.1: 16384^2 for 2D, 512^3 for 3D, 1000
    time-steps. *)

open Stencil

type t = {
  name : string;
  pattern : Pattern.t;
  c_source : string;
  flops_per_cell : int;  (** Table 3's number; tests assert it *)
  full_dims : int array;  (** the paper's input size *)
  full_steps : int;
  stencilgen_available : bool;
      (** present in the released STENCILGEN kernels (IEEE2017 repo), so
          Fig 6 compares against it *)
}

let c0_value = 2.5

(* ------------------------------------------------------------------ *)
(* C source generation from the expression tree                        *)
(* ------------------------------------------------------------------ *)

let loop_vars = [| "i"; "j"; "k" |]

let cell_ref dims off =
  let subs =
    List.init dims (fun d ->
        let v = loop_vars.(d) and c = off.(d) in
        if c = 0 then v else if c > 0 then Fmt.str "%s+%d" v c else Fmt.str "%s-%d" v (-c))
  in
  Fmt.str "a[t%%2]%s" (String.concat "" (List.map (Fmt.str "[%s]") subs))

let rec c_of_sexpr dims = function
  | Sexpr.Const c -> Fmt.str "%.17g" c
  | Sexpr.Coef o -> Fmt.str "%.17g" (Sexpr.coef_value o)
  | Sexpr.Param p -> p
  | Sexpr.Cell o -> cell_ref dims o
  | Sexpr.Neg e -> Fmt.str "(-%s)" (c_of_sexpr dims e)
  | Sexpr.Add (a, b) -> Fmt.str "(%s + %s)" (c_of_sexpr dims a) (c_of_sexpr dims b)
  | Sexpr.Sub (a, b) -> Fmt.str "(%s - %s)" (c_of_sexpr dims a) (c_of_sexpr dims b)
  | Sexpr.Mul (a, b) -> Fmt.str "(%s * %s)" (c_of_sexpr dims a) (c_of_sexpr dims b)
  | Sexpr.Div (a, b) -> Fmt.str "(%s / %s)" (c_of_sexpr dims a) (c_of_sexpr dims b)
  | Sexpr.Sqrt e -> Fmt.str "sqrt(%s)" (c_of_sexpr dims e)

(** Render the full double-buffered C kernel of Fig 4's shape. *)
let c_source_of ~name ~dims ~size ~rad expr =
  let buf = Buffer.create 1024 in
  let out fmt = Fmt.kstr (fun s -> Buffer.add_string buf s; Buffer.add_char buf '\n') fmt in
  out "#define SB %d" size;
  let array_dims = String.concat "" (List.init dims (fun _ -> "[SB]")) in
  let params = Sexpr.params expr in
  let scalar_params = String.concat "" (List.map (Fmt.str ", double %s") params) in
  out "void %s(double a[2]%s%s, int timesteps) {" name array_dims scalar_params;
  out "  for (int t = 0; t < timesteps; t++)";
  List.init dims Fun.id
  |> List.iter (fun d ->
         out "%sfor (int %s = %d; %s < SB - %d; %s++)"
           (String.make (4 + (2 * d)) ' ')
           loop_vars.(d) rad loop_vars.(d) rad loop_vars.(d));
  let lhs =
    Fmt.str "a[(t+1)%%2]%s"
      (String.concat "" (List.init dims (fun d -> Fmt.str "[%s]" loop_vars.(d))))
  in
  out "%s%s = %s;" (String.make (6 + (2 * dims)) ' ') lhs (c_of_sexpr dims expr);
  out "}";
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Expression builders (Table 3 equations)                             *)
(* ------------------------------------------------------------------ *)

let div_by_c0 e = Sexpr.Div (e, Sexpr.Param "c0")

(* gradient2d (Table 3): c*f + 1.0/sqrt(c0 + sum over axes of squared
   differences, each written out twice as in the paper's equation so the
   FLOP count is 19 under the rsqrt fusion). *)
let gradient2d_expr =
  let f0 = Sexpr.Cell [| 0; 0 |] in
  let sq off =
    Sexpr.Mul (Sexpr.Sub (f0, Sexpr.Cell off), Sexpr.Sub (f0, Sexpr.Cell off))
  in
  let term i = Sexpr.Add (sq [| i; 0 |], sq [| 0; i |]) in
  let inner =
    Sexpr.Add (Sexpr.Param "c0", Sexpr.Add (term (-1), term 1))
  in
  Sexpr.Add
    (Sexpr.Mul (Sexpr.Coef [| 0; 0 |], f0), Sexpr.Div (Sexpr.Const 1.0, Sexpr.Sqrt inner))

let make_benchmark ~name ~dims ~rad ~flops ~stencilgen expr =
  let size = if dims = 2 then 16_384 else 512 in
  (* C identifiers cannot contain '-' (e.g. j2d9pt-gol). *)
  let ident = String.map (function '-' -> '_' | c -> c) name in
  {
    name;
    pattern = Pattern.make ~name:ident ~dims ~params:[ ("c0", c0_value) ] expr;
    c_source = c_source_of ~name:ident ~dims ~size ~rad expr;
    flops_per_cell = flops;
    full_dims = Array.make dims size;
    full_steps = 1000;
    stencilgen_available = stencilgen;
  }

let star ~dims x =
  make_benchmark
    ~name:(Fmt.str "star%dd%dr" dims x)
    ~dims ~rad:x
    ~flops:(if dims = 2 then (8 * x) + 1 else (12 * x) + 1)
    ~stencilgen:(dims = 3 && x <= 2)
    (Sexpr.weighted_sum (Shape.star_offsets ~dims ~rad:x))

let box ~dims x =
  let pts = Shape.ipow ((2 * x) + 1) dims in
  make_benchmark
    ~name:(Fmt.str "box%dd%dr" dims x)
    ~dims ~rad:x
    ~flops:((2 * pts) - 1)
    ~stencilgen:false
    (Sexpr.weighted_sum (Shape.box_offsets ~dims ~rad:x))

let j2d5pt =
  make_benchmark ~name:"j2d5pt" ~dims:2 ~rad:1 ~flops:10 ~stencilgen:true
    (div_by_c0 (Sexpr.weighted_sum (Shape.star_offsets ~dims:2 ~rad:1)))

let j2d9pt =
  make_benchmark ~name:"j2d9pt" ~dims:2 ~rad:2 ~flops:18 ~stencilgen:true
    (div_by_c0 (Sexpr.weighted_sum (Shape.star_offsets ~dims:2 ~rad:2)))

let j2d9pt_gol =
  make_benchmark ~name:"j2d9pt-gol" ~dims:2 ~rad:1 ~flops:18 ~stencilgen:true
    (div_by_c0 (Sexpr.weighted_sum (Shape.box_offsets ~dims:2 ~rad:1)))

let gradient2d =
  make_benchmark ~name:"gradient2d" ~dims:2 ~rad:1 ~flops:19 ~stencilgen:true
    gradient2d_expr

let j3d27pt =
  make_benchmark ~name:"j3d27pt" ~dims:3 ~rad:1 ~flops:54 ~stencilgen:true
    (div_by_c0 (Sexpr.weighted_sum (Shape.box_offsets ~dims:3 ~rad:1)))

let all =
  List.concat
    [
      List.init 4 (fun i -> star ~dims:2 (i + 1));
      List.init 4 (fun i -> box ~dims:2 (i + 1));
      [ j2d5pt; j2d9pt; j2d9pt_gol; gradient2d ];
      List.init 4 (fun i -> star ~dims:3 (i + 1));
      List.init 4 (fun i -> box ~dims:3 (i + 1));
      [ j3d27pt ];
    ]

let find name = List.find_opt (fun b -> String.equal b.name name) all

let two_dimensional = List.filter (fun b -> b.pattern.Pattern.dims = 2) all

let three_dimensional = List.filter (fun b -> b.pattern.Pattern.dims = 3) all

(** Small grid sizes for simulator-based verification (full sizes are for
    the analytic model only). *)
let test_dims b =
  match b.pattern.Pattern.dims with
  | 2 -> [| 40; 44 |]
  | 3 -> [| 20; 22; 24 |]
  | n -> Array.make n 24

let pp ppf b =
  Fmt.pf ppf "%-12s %a %3d flop/cell %s" b.name Pattern.pp b.pattern b.flops_per_cell
    (if b.stencilgen_available then "[stencilgen]" else "")
