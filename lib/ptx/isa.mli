(** PTX-lite: a small virtual ISA for AN5D kernels.

    The paper's authors validated their model "upon analyzing the
    generated PTX code" (§5) and observed that unrolling the inner loop
    "results in performance degradation due to increased instruction
    fetch latency" (§4.3). To reason about such instruction-level
    effects — and to validate the code generator more deeply than text
    matching — this library compiles the LOAD/CALC/STORE schedule into
    straight-line instruction blocks over a register machine and
    interprets them SIMT-style on the simulated GPU.

    The ISA is deliberately tiny: float registers, predicated global and
    shared accesses, the arithmetic the stencil IR needs (with explicit
    FMA), selects and barriers. Addresses are structured rather than
    byte-level: a global access names a sub-plane (relative to the
    block's pipeline) plus the thread's own column; a shared access
    names a tile slot and an in-plane offset. *)

type reg = int
(** Virtual float register. Fixed sub-plane registers reuse the
    generated code's numbering (register [M] of time-step [T] is
    [reg_id ~planes ~tstep ~id:M]); temporaries live above them. *)

val reg_id : planes:int -> tstep:int -> id:int -> reg

type operand = Reg of reg | Imm of float

(** Predicates guarding an instruction (the conditional branches the
    macros hide, §4.3): evaluated per thread by the interpreter. *)
type pred =
  | Always
  | In_grid  (** thread's cell is inside the grid *)
  | Interior  (** cell interior and the sub-plane is stream-interior *)
  | In_compute  (** thread inside the block's compute region *)

(** One SIMT instruction. [plane] operands are *relative* positions in
    the block's streaming pipeline; the interpreter adds the base. *)
type instr =
  | Ld_global of { dst : reg; plane : int; pred : pred }
      (** load the thread's cell of a sub-plane *)
  | St_global of { src : reg; plane : int; pred : pred }
  | St_shared of { src : reg; buf_slot : int }
      (** store the thread's value into the current shared tile at
          plane-slot [buf_slot] (0 for star/associative tiles) *)
  | Ld_shared of { dst : reg; buf_slot : int; delta : int array }
      (** read a neighbor's value from the current tile: [delta] is the
          in-plane offset (length N-1) *)
  | Bar_sync
  | Buf_switch  (** flip the double-buffered tile *)
  | Mov of { dst : reg; src : operand }
  | Add of { dst : reg; a : operand; b : operand }
  | Sub of { dst : reg; a : operand; b : operand }
  | Mul of { dst : reg; a : operand; b : operand }
  | Fma of { dst : reg; a : operand; b : operand; c : operand }
      (** dst = a * b + c *)
  | Div of { dst : reg; a : operand; b : operand }
  | Sqrt of { dst : reg; a : operand }
  | Neg of { dst : reg; a : operand }
  | Sel of { dst : reg; if_interior : reg; otherwise : reg; plane : int }
      (** the branch-free halo overwrite of §4.1: threads whose cell is
          interior (and the sub-plane at relative position [plane] is
          stream-interior) keep the computed value, others the previous
          time-step's *)

type block = instr list
(** A basic block: the instructions of one pipeline position. All
    [plane] fields are relative to the position the block executes at. *)

(** A compiled kernel. [head] holds one statically specialized block per
    warm-up position; [inner] one block per rotation slot — the steady
    state's loop body is their concatenation (it advances [2*rad + 1]
    positions per iteration, §4.3), and the drain (tail) re-executes
    inner blocks position by position. *)
type program = {
  degree : int;
  planes : int;  (** rotation period [2*rad + 1] *)
  head : block array;
  warmup : block array;
      (** the non-lowermost stream block's head (§4.2): starts
          [degree * rad] planes below its output range with redundant
          computation; CALC_T activates at [2*T*rad] instead of
          [T*rad] *)
  inner : block array;
  n_regs : int;  (** registers used (fixed sub-plane set + temporaries) *)
}

(** {1 Statistics} *)

type mix = {
  ld_global : int;
  st_global : int;
  ld_shared : int;
  st_shared : int;
  fma : int;
  mul : int;
  add : int;
  other : int;  (** div, sqrt, neg *)
  mov : int;
  sel : int;
  bar : int;
  total : int;
}

val zero_mix : mix

val count_instr : mix -> instr -> mix

val block_mix : block -> mix

val add_mix : mix -> mix -> mix

val scale_mix : int -> mix -> mix

val program_mix : program -> mix
(** Static instruction mix of the whole program text (both heads + one
    inner loop body). *)

val inner_loop_size : program -> int
(** The inner loop's static code size in instructions — what the
    instruction fetch path must sustain per iteration (§4.3's unrolling
    observation). *)

val pp_mix : Format.formatter -> mix -> unit

(** {1 Printing} *)

val pp_operand : Format.formatter -> operand -> unit

val pp_pred : Format.formatter -> pred -> unit

val pp_instr : Format.formatter -> instr -> unit

val pp_block : Format.formatter -> block -> unit
