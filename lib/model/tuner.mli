(** Model-guided parameter tuning (§6.3): enumerate the paper's search
    space (144 configurations for 2D stencils, 64 for 3D), prune by the
    register estimate, rank with the model, measure the top [k]
    (5 in the paper) with the register-limit search, keep the winner. *)

open An5d_core

type candidate = { config : Config.t; predicted : Predict.report }

type result = {
  best : Config.t;  (** includes the chosen register limit *)
  tuned : Measure.measurement;
  model_gflops : float;  (** the model's prediction for [best] *)
  explored : int;
  pruned : int;
  top : candidate list;  (** the model's top-k, best first *)
  verify : float option;
      (** max abs deviation of the winner's executed run from the
          reference on the [verify_dims] grid; [None] when not
          requested *)
}

val bt_range : int -> int list
(** [1..16] for 2D, [1..8] for 3D. *)

val bs_choices : int -> int array list

val hs_choices : int -> int list

val search_space : dims:int -> Config.t list

val enumerate :
  Gpu.Device.t ->
  prec:Stencil.Grid.precision ->
  Stencil.Pattern.t ->
  dims_sizes:int array ->
  int * Config.t list
(** [(explored, feasible)] after halo/thread/register/smem pruning. *)

val rank :
  Gpu.Device.t ->
  prec:Stencil.Grid.precision ->
  Stencil.Pattern.t ->
  dims_sizes:int array ->
  steps:int ->
  int * candidate list
(** Feasible candidates sorted by predicted GFLOP/s, descending. *)

exception No_feasible_configuration of string

val tune_cfg :
  ?k:int ->
  ?cfg:Run_config.t ->
  ?verify_dims:int array ->
  Gpu.Device.t ->
  prec:Stencil.Grid.precision ->
  Stencil.Pattern.t ->
  dims_sizes:int array ->
  steps:int ->
  result
(** The unified-API entrypoint. Of the {!Run_config} only [domains]
    matters: it measures the top-[k] candidates in parallel (the
    measurement layer is analytic, so the result is unchanged);
    [verify_dims] additionally executes the winner on a small grid of
    those sizes and reports the deviation from the reference.
    @raise No_feasible_configuration when pruning leaves nothing. *)

val tune :
  ?k:int ->
  ?domains:int ->
  ?verify_dims:int array ->
  Gpu.Device.t ->
  prec:Stencil.Grid.precision ->
  Stencil.Pattern.t ->
  dims_sizes:int array ->
  steps:int ->
  result
(** Deprecated optional-argument wrapper around {!tune_cfg};
    equivalent for the same [domains]. Prefer {!tune_cfg}. *)
