(** Model-guided parameter tuning (§6.3): enumerate the paper's search
    space (144 configurations for 2D stencils, 64 for 3D), prune by the
    register estimate, rank with the model, measure the top [k]
    (5 in the paper) with the register-limit search, keep the winner. *)

open An5d_core

type candidate = { config : Config.t; predicted : Predict.report }

type result = {
  best : Config.t;  (** includes the chosen register limit *)
  tuned : Measure.measurement;
  model_gflops : float;  (** the model's prediction for [best] *)
  explored : int;
  pruned : int;
  top : candidate list;  (** the model's top-k, best first *)
  verify : float option;
      (** max abs deviation of the winner's executed run from the
          reference on the [verify_dims] grid; [None] when not
          requested *)
  seeded : Config.t option;
      (** the transferred winner that restricted this search to its
          neighborhood, when the search was seeded (see
          {!neighborhood}) *)
}

val bt_range : int -> int list
(** [1..16] for 2D, [1..8] for 3D. *)

val bs_choices : int -> int array list

val hs_choices : int -> int list

val search_space : dims:int -> Config.t list

val neighborhood : dims:int -> Config.t -> Config.t list
(** The cross-device transfer neighborhood of a seed configuration:
    temporal degrees within two index positions of the seed's, block
    sizes and stream lengths within one choice. 45 of 144
    configurations for 2D, 30 of 64 for 3D — always at most half the
    full space. A seed value outside the paper's search space widens
    that knob back to its full range (an out-of-space seed must never
    narrow the search). *)

val enumerate :
  ?space:Config.t list ->
  Gpu.Device.t ->
  prec:Stencil.Grid.precision ->
  Stencil.Pattern.t ->
  dims_sizes:int array ->
  int * Config.t list
(** [(explored, feasible)] after halo/thread/register/smem pruning.
    [space] (default {!search_space}) restricts the enumeration, e.g.
    to a transfer {!neighborhood}. *)

val rank :
  ?space:Config.t list ->
  Gpu.Device.t ->
  prec:Stencil.Grid.precision ->
  Stencil.Pattern.t ->
  dims_sizes:int array ->
  steps:int ->
  int * candidate list
(** Feasible candidates sorted by predicted GFLOP/s, descending. *)

exception No_feasible_configuration of string

val tune_cfg :
  ?k:int ->
  ?cfg:Run_config.t ->
  ?verify_dims:int array ->
  ?seed_config:Config.t ->
  Gpu.Device.t ->
  prec:Stencil.Grid.precision ->
  Stencil.Pattern.t ->
  dims_sizes:int array ->
  steps:int ->
  result
(** The unified-API entrypoint. Of the {!Run_config} only [domains]
    matters: it measures the top-[k] candidates in parallel (the
    measurement layer is analytic, so the result is unchanged);
    [verify_dims] additionally executes the winner on a small grid of
    those sizes and reports the deviation from the reference.
    [seed_config] — a winner transferred from another device —
    restricts the ranked space to its {!neighborhood}; when the whole
    neighborhood is infeasible on this device the search silently
    widens back to the full space (the result's [seeded] field then
    reads [None]).
    @raise No_feasible_configuration when pruning leaves nothing. *)
