(** Model-guided parameter tuning (§6.3).

    Enumerates the paper's search space — for 2D stencils
    [bT in 1..16, bS in {128,256,512}, h in {256,512,1024}], for 3D
    [bT in 1..8, bS in {16x16,32x16,32x32,64x16}, h in {128,256}] —
    prunes configurations whose §6.3 register estimate exceeds the
    hardware limits, ranks the survivors with the model, "runs" the top
    [k] (5 in the paper) through the measurement layer with the
    register-limit search, and returns the fastest. *)

open An5d_core

let src_log = Logs.Src.create "an5d.tuner" ~doc:"model-guided tuning"

module Log = (val Logs.src_log src_log : Logs.LOG)

type candidate = {
  config : Config.t;
  predicted : Predict.report;
}

type result = {
  best : Config.t;
  tuned : Measure.measurement;  (** the simulated measured run *)
  model_gflops : float;  (** the model's prediction for [best] *)
  explored : int;  (** configurations enumerated *)
  pruned : int;  (** removed by the register estimate *)
  top : candidate list;  (** the model's top-k, best predicted first *)
  verify : float option;
      (** max abs deviation of the winner's executed run from the
          reference on the [verify_dims] grid; [None] when not
          requested *)
  seeded : Config.t option;
      (** the transferred winner that restricted this search to its
          neighborhood, when the search was seeded *)
}

let bt_range dims = if dims <= 2 then List.init 16 (fun i -> i + 1) else List.init 8 (fun i -> i + 1)

let bs_choices dims =
  if dims <= 2 then [ [| 128 |]; [| 256 |]; [| 512 |] ]
  else [ [| 16; 16 |]; [| 32; 16 |]; [| 32; 32 |]; [| 64; 16 |] ]

let hs_choices dims = if dims <= 2 then [ 256; 512; 1024 ] else [ 128; 256 ]

(** The paper's full search space for a stencil of dimensionality
    [dims]: 16 x 3 x 3 = 144 configurations for 2D, 8 x 4 x 2 = 64 for
    3D. *)
let search_space ~dims =
  List.concat_map
    (fun bt ->
      List.concat_map
        (fun bs ->
          List.map (fun h -> Config.make ~bt ~bs ~hs:(Some h) ()) (hs_choices dims))
        (bs_choices dims))
    (bt_range dims)

(* ------------------------------------------------------------------ *)
(* Cross-device transfer: the seeded neighborhood search               *)
(* ------------------------------------------------------------------ *)

let idx_of eq v xs =
  let rec go i = function
    | [] -> None
    | x :: tl -> if eq x v then Some i else go (i + 1) tl
  in
  go 0 xs

(* Elements of [xs] within [span] index positions of [v]; the whole
   list when [v] is not a member (an out-of-space seed must widen, not
   narrow, the search). *)
let around ~span eq v xs =
  match idx_of eq v xs with
  | None -> xs
  | Some i -> List.filteri (fun j _ -> abs (j - i) <= span) xs

(** The transfer neighborhood of a seed configuration: temporal degrees
    within 2 of the seed's (the knob that shifts most across device
    generations — "Revisiting Temporal Blocking Stencil Optimizations"
    finds the winning b_T moves with every generation), block sizes and
    stream lengths within one choice of the seed's. 45 of 144
    configurations for 2D, 30 of 64 for 3D — always at most half the
    full space, which is the pruning-rate win BENCH_serve.json gates. *)
let neighborhood ~dims (seed : Config.t) =
  let bts = around ~span:2 ( = ) seed.Config.bt (bt_range dims) in
  let bss = around ~span:1 ( = ) seed.Config.bs (bs_choices dims) in
  let hss =
    match seed.Config.hs with
    | None -> hs_choices dims
    | Some h -> around ~span:1 ( = ) h (hs_choices dims)
  in
  List.concat_map
    (fun bt ->
      List.concat_map
        (fun bs -> List.map (fun h -> Config.make ~bt ~bs ~hs:(Some h) ()) hss)
        bss)
    bts

let enumerate ?space (dev : Gpu.Device.t) ~prec pattern ~dims_sizes =
  let dims = pattern.Stencil.Pattern.dims in
  let rad = pattern.Stencil.Pattern.radius in
  let space = match space with Some s -> s | None -> search_space ~dims in
  let explored = List.length space in
  let feasible =
    List.filter
      (fun cfg ->
        Config.valid ~rad ~max_threads:dev.Gpu.Device.max_threads_per_block cfg
        && Registers.feasible dev ~prec ~bt:cfg.Config.bt ~rad
             ~n_thr:(Config.n_thr cfg)
        && Execmodel.smem_bytes (Execmodel.make pattern cfg dims_sizes) ~prec
           <= dev.Gpu.Device.smem_per_sm)
      space
  in
  (explored, feasible)

(** Rank all feasible configurations by predicted performance. *)
let rank ?space (dev : Gpu.Device.t) ~prec pattern ~dims_sizes ~steps =
  let explored, feasible = enumerate ?space dev ~prec pattern ~dims_sizes in
  let candidates =
    List.map
      (fun config ->
        let em = Execmodel.make pattern config dims_sizes in
        { config; predicted = Predict.evaluate dev ~prec em ~steps })
      feasible
  in
  let sorted =
    List.sort
      (fun a b -> Float.compare b.predicted.Predict.gflops a.predicted.Predict.gflops)
      candidates
  in
  (explored, sorted)

exception No_feasible_configuration of string

(* Observability: the pruning decision and the measured top-k are the
   two §6.3 quantities later PRs need to attribute tuning cost; each
   measured candidate gets its own span carrying the model's predicted
   number next to the measured one. *)
let m_candidates_pruned = Obs.Metrics.counter "tuner_candidates_pruned"

let m_candidates_measured = Obs.Metrics.counter "tuner_candidates_measured"

let g_best_gflops = Obs.Metrics.gauge "tuner_best_gflops"

let m_seeded_searches = Obs.Metrics.counter "tuner_seeded_searches"

(** Full §6.3 tuning: model-rank, measure the top [k], pick the winner.
    The unified-API entrypoint: of the {!Run_config} only [domains]
    matters — it measures the top-k candidates in parallel; the
    measurement layer is purely analytic, so the result is identical to
    the sequential sweep. [verify_dims] additionally executes the
    winning configuration on a small grid of those sizes through the
    blocked simulator (the compiled plan path — its plan is memoized,
    so the winner's reg-limit variants share one compilation) and
    reports the max abs deviation from the reference executor. *)
let rec tune_cfg ?(k = 5) ?(cfg = Run_config.default) ?verify_dims ?seed_config
    (dev : Gpu.Device.t) ~prec pattern ~dims_sizes ~steps =
  Obs.Trace.with_span "tune"
    ~attrs:
      [ ("pattern", Obs.Trace.Str pattern.Stencil.Pattern.name);
        ("device", Obs.Trace.Str dev.Gpu.Device.name);
        ("prec", Obs.Trace.Str (Stencil.Grid.precision_to_string prec));
        ("seeded", Obs.Trace.Bool (seed_config <> None)) ]
  @@ fun () ->
  let space =
    Option.map
      (fun seed ->
        Obs.Metrics.incr m_seeded_searches;
        neighborhood ~dims:pattern.Stencil.Pattern.dims seed)
      seed_config
  in
  let explored, sorted =
    Obs.Trace.with_span "rank" (fun () ->
        let explored, sorted = rank ?space dev ~prec pattern ~dims_sizes ~steps in
        Obs.Trace.add_attrs
          [ ("explored", Obs.Trace.Int explored);
            ("feasible", Obs.Trace.Int (List.length sorted)) ];
        (explored, sorted))
  in
  Obs.Metrics.add m_candidates_pruned (explored - List.length sorted);
  if sorted = [] && seed_config <> None then begin
    (* a seed whose whole neighborhood is infeasible on this device
       must widen back to the full search, not fail *)
    Log.info (fun m ->
        m "seed neighborhood infeasible on %s; falling back to the full space"
          dev.Gpu.Device.name);
    tune_cfg ~k ~cfg ?verify_dims dev ~prec pattern ~dims_sizes ~steps
  end
  else begin
  if sorted = [] then
    raise
      (No_feasible_configuration
         (Fmt.str "%s on %s (%s)" pattern.Stencil.Pattern.name dev.Gpu.Device.name
            (Stencil.Grid.precision_to_string prec)));
  Log.info (fun m ->
      m "%s on %s (%s): %d configurations, %d feasible" pattern.Stencil.Pattern.name
        dev.Gpu.Device.name
        (Stencil.Grid.precision_to_string prec)
        explored (List.length sorted));
  let top = List.filteri (fun i _ -> i < k) sorted in
  let top_arr = Array.of_list top in
  let slots = Array.make (Array.length top_arr) None in
  let measure_one _i cand =
    Obs.Trace.with_span "candidate"
      ~attrs:
        [ ("config", Obs.Trace.Str (Fmt.str "%a" Config.pp cand.config));
          ("predicted_gflops", Obs.Trace.Float cand.predicted.Predict.gflops) ]
    @@ fun () ->
    let em = Execmodel.make pattern cand.config dims_sizes in
    let reg_limit, m = Measure.with_reg_limit_search dev ~prec em ~steps in
    let config = { cand.config with Config.reg_limit } in
    Obs.Metrics.incr m_candidates_measured;
    Obs.Trace.add_attrs [ ("measured_gflops", Obs.Trace.Float m.Measure.gflops) ];
    (config, m, cand.predicted.Predict.gflops)
  in
  Gpu.Pool.with_pool ~domains:cfg.Run_config.domains (fun pool ->
      match pool with
      | Some pool ->
          Gpu.Pool.run pool ~n:(Array.length top_arr) (fun ~lane:_ i ->
              slots.(i) <- Some (measure_one i top_arr.(i)))
      | None ->
          Array.iteri (fun i cand -> slots.(i) <- Some (measure_one i cand)) top_arr);
  let measured = Array.to_list slots |> List.filter_map Fun.id in
  List.iter
    (fun (config, m, predicted) ->
      Log.debug (fun l ->
          l "candidate %a: predicted %.0f, measured %.0f GFLOP/s" Config.pp config
            predicted m.Measure.gflops))
    measured;
  let best_config, best_m, model_gflops =
    List.fold_left
      (fun (bc, bm, bp) (c, m, p) ->
        if m.Measure.gflops > bm.Measure.gflops then (c, m, p) else (bc, bm, bp))
      (match measured with first :: _ -> first | [] -> assert false)
      measured
  in
  Obs.Metrics.set_gauge g_best_gflops best_m.Measure.gflops;
  let verify =
    Option.map
      (fun vdims ->
        Obs.Trace.with_span "verify" (fun () ->
            let vsteps = min steps (2 * best_config.Config.bt) in
            let em = Execmodel.make pattern best_config vdims in
            let machine = Gpu.Machine.create ~prec dev in
            let g = Stencil.Grid.init_random ~prec vdims in
            let result, _ = Blocking.run_cfg Run_config.default em ~machine ~steps:vsteps g in
            let reference = Stencil.Reference.run pattern ~steps:vsteps g in
            Stencil.Grid.max_abs_diff reference result))
      verify_dims
  in
  {
    best = best_config;
    tuned = best_m;
    model_gflops;
    explored;
    pruned = explored - List.length sorted;
    top;
    verify;
    seeded = seed_config;
  }
  end
